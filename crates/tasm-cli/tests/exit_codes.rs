//! Exit-code discipline, end to end: 0 = success (including stdout
//! truncated by a closed pipe), 1 = usage error, 2 = runtime error.
//! Scripts branch on these; each class is pinned for every subcommand
//! family.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn tasm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tasm"))
        .args(args)
        .output()
        .expect("spawn tasm")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tasm_exit_{}_{name}", std::process::id()))
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn usage_errors_exit_1() {
    // Unknown command.
    assert_eq!(code(&tasm(&["frobnicate"])), 1);
    // Missing required options.
    assert_eq!(code(&tasm(&["query"])), 1);
    assert_eq!(code(&tasm(&["ted"])), 1);
    assert_eq!(code(&tasm(&["stats"])), 1);
    assert_eq!(code(&tasm(&["convert"])), 1);
    assert_eq!(code(&tasm(&["index"])), 1);
    assert_eq!(code(&tasm(&["serve"])), 1); // no --doc
    assert_eq!(code(&tasm(&["client"])), 1); // no --socket/--tcp
                                             // Malformed option values and domain misuse.
    assert_eq!(
        code(&tasm(&["gen", "--dataset", "nope", "--nodes", "10"])),
        1
    );
    assert_eq!(code(&tasm(&["gen", "--nodes", "many"])), 1);
    let err = tasm(&["gen", "--nodes", "many"]);
    assert!(
        String::from_utf8_lossy(&err.stderr).starts_with("usage error:"),
        "usage failures say so on stderr"
    );
}

#[test]
fn runtime_errors_exit_2() {
    // Unreadable input file.
    let out = tasm(&[
        "query",
        "--query-str",
        "<a/>",
        "--doc",
        "/nonexistent/never.xml",
    ]);
    assert_eq!(code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).starts_with("error:"));

    // Malformed XML content (the command line itself was fine).
    let bad = tmp("bad.xml");
    std::fs::write(&bad, "<open><unclosed>").unwrap();
    let out = tasm(&["stats", "--doc", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 2);

    // A truncated .pq must be a loud runtime error, not a smaller doc.
    let doc = tmp("trunc_src.xml");
    let pq = tmp("trunc.pq");
    assert_eq!(
        code(&tasm(&[
            "gen",
            "--nodes",
            "500",
            "--out",
            doc.to_str().unwrap()
        ])),
        0
    );
    assert_eq!(
        code(&tasm(&[
            "convert",
            "--doc",
            doc.to_str().unwrap(),
            "--out",
            pq.to_str().unwrap()
        ])),
        0
    );
    let bytes = std::fs::read(&pq).unwrap();
    std::fs::write(&pq, &bytes[..bytes.len() - 12]).unwrap();
    let out = tasm(&["stats", "--doc", pq.to_str().unwrap()]);
    assert_eq!(code(&out), 2);

    let _ = std::fs::remove_file(&bad);
    let _ = std::fs::remove_file(&doc);
    let _ = std::fs::remove_file(&pq);
}

#[test]
fn closed_stdout_pipe_exits_0() {
    // `tasm gen | head` — the reader hangs up after a few bytes; the
    // generator must treat that as success, not an error.
    let mut child = Command::new(env!("CARGO_BIN_EXE_tasm"))
        .args(["gen", "--dataset", "dblp", "--nodes", "300000"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tasm gen");
    let mut stdout = child.stdout.take().unwrap();
    let mut first = [0u8; 64];
    stdout.read_exact(&mut first).unwrap();
    drop(stdout); // close the pipe with megabytes still unwritten
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0), "EPIPE is a clean exit");
}
