//! The `serve` and `client` subcommands: the resident query daemon and
//! a minimal line-protocol client for scripts and tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::time::Duration;

use crate::args::Args;
use crate::errors::{CliError, UsageExt};
use crate::output::Out;
use tasm_core::{Doc, DocStore, QueryParser, Server, ServerConfig};
use tasm_index::Corpus;
use tasm_tree::LabelDict;

/// Derives the document alias from `--doc <name=path>` (or the file
/// stem when no `name=` is given). Shared with `corpus build/add`.
pub(crate) fn doc_alias(value: &str) -> (String, &str) {
    if let Some((name, path)) = value.split_once('=') {
        if !name.is_empty() {
            return (name.to_string(), path);
        }
    }
    let stem = std::path::Path::new(value)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(value);
    (stem.to_string(), value)
}

fn build_config(args: &Args) -> Result<ServerConfig, CliError> {
    let defaults = ServerConfig::default();
    Ok(ServerConfig {
        workers: args.get_num("workers", defaults.workers).usage()?,
        queue_capacity: args.get_num("queue", defaults.queue_capacity).usage()?,
        max_batch: args.get_num("max-batch", defaults.max_batch).usage()?,
        batch_window: Duration::from_millis(
            args.get_num("batch-window-ms", defaults.batch_window.as_millis() as u64)
                .usage()?,
        ),
        default_deadline: Duration::from_millis(
            args.get_num(
                "default-timeout-ms",
                defaults.default_deadline.as_millis() as u64,
            )
            .usage()?,
        ),
        max_deadline: Duration::from_millis(
            args.get_num("max-timeout-ms", defaults.max_deadline.as_millis() as u64)
                .usage()?,
        ),
        drain_deadline: Duration::from_millis(
            args.get_num(
                "drain-timeout-ms",
                defaults.drain_deadline.as_millis() as u64,
            )
            .usage()?,
        ),
        read_timeout: Duration::from_millis(
            args.get_num("read-timeout-ms", defaults.read_timeout.as_millis() as u64)
                .usage()?,
        ),
        corpus_threads: args
            .get_num("corpus-threads", defaults.corpus_threads)
            .usage()?,
        ..defaults
    })
}

/// `tasm serve` — load documents, bind a socket, answer queries until
/// SIGTERM/SIGINT or a client's SHUTDOWN, then drain gracefully.
///
/// Exit code 0 means every admitted request's response reached its
/// socket before the drain deadline; a dirty drain exits 2.
pub fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let mut store = DocStore::new();
    for (name, value) in &args.options {
        match name.as_str() {
            "doc" => {
                let (alias, path) = doc_alias(value);
                let mut dict = LabelDict::new();
                let tree = crate::load_xml(path, &mut dict)?;
                eprintln!(
                    "tasm serve: loaded doc '{alias}': {} nodes from {path}",
                    tree.len()
                );
                store.insert(Doc::new(alias, tree, dict));
            }
            "corpus" => {
                // A damaged corpus still serves: healthy shards answer,
                // the protocol carries the degraded marker, and the
                // operator sees the quarantine reasons here at startup.
                let (alias, path) = doc_alias(value);
                let corpus =
                    Corpus::open(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
                for r in corpus.quarantined() {
                    eprintln!(
                        "tasm serve: warning: corpus '{alias}' quarantined '{}': {}",
                        r.name, r.error
                    );
                }
                eprintln!(
                    "tasm serve: loaded corpus '{alias}': {}/{} shard(s) healthy from {path}",
                    corpus.healthy_count(),
                    corpus.total_shards()
                );
                store.insert(Doc::new_corpus(alias, Arc::new(corpus)));
            }
            _ => {}
        }
    }
    if store.is_empty() {
        return Err(CliError::Usage(
            "serve needs at least one --doc <name=file.xml> or --corpus <name=dir>".into(),
        ));
    }
    let cfg = build_config(args)?;
    // Queries arrive over the wire as XML; parse them with the same
    // parser the one-shot CLI uses so rankings are identical.
    let parser: QueryParser =
        Arc::new(|text, dict| tasm_xml::parse_tree_str(text, dict).map_err(|e| e.to_string()));
    let server = Server::new(cfg, store, Some(parser));
    let stop = crate::signal::install_term_flag();

    let socket = args.get("socket");
    let tcp = args.get("tcp");
    match (socket, tcp) {
        (Some(path), None) => {
            #[cfg(unix)]
            {
                // A previous crash can leave the socket file behind;
                // binding over it needs the stale file gone.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| CliError::Runtime(format!("bind {path}: {e}")))?;
                eprintln!("tasm serve: listening on unix socket {path}");
                let served = server.serve_unix(&listener, Some(stop));
                let clean = server.drain();
                let _ = std::fs::remove_file(path);
                served.map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
                finish(clean)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(CliError::Usage(
                    "--socket needs a Unix platform; use --tcp".into(),
                ))
            }
        }
        (None, Some(addr)) => {
            let listener = TcpListener::bind(addr)
                .map_err(|e| CliError::Runtime(format!("bind {addr}: {e}")))?;
            eprintln!(
                "tasm serve: listening on tcp {}",
                listener
                    .local_addr()
                    .map_err(|e| CliError::Runtime(e.to_string()))?
            );
            let served = server.serve_tcp(&listener, Some(stop));
            let clean = server.drain();
            served.map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
            finish(clean)
        }
        (None, None) => Err(CliError::Usage(
            "serve needs --socket <path> or --tcp <addr:port>".into(),
        )),
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--socket and --tcp are mutually exclusive".into(),
        )),
    }
}

fn finish(clean: bool) -> Result<(), CliError> {
    if clean {
        eprintln!("tasm serve: drained cleanly");
        Ok(())
    } else {
        Err(CliError::Runtime(
            "drain deadline passed with requests still in flight".into(),
        ))
    }
}

/// `tasm client` — connect, send requests, stream responses to stdout.
///
/// Requests come from repeated `--send <line>` options, or — when none
/// are given — verbatim from stdin (including a final line *without* a
/// newline, which is how the truncated-request path is exercised).
/// The client transports; it does not interpret. Server-side `ERR`/
/// `BUSY` lines still exit 0 — scripts branch on the response text.
///
/// With `--retries <n>` the client switches to *framed* mode: each
/// `--send` request is written and its response read before the next,
/// and a `BUSY retry-after-ms=<t>` answer is retried up to `n` times
/// with bounded, jittered exponential backoff starting from the
/// server's hint (capped by `--max-backoff-ms`). Exhausted retries
/// surface the final `BUSY` line verbatim — still exit 0.
pub fn cmd_client(args: &Args) -> Result<(), CliError> {
    let sends: Vec<&str> = args.get_all("send");
    let retries: u32 = args.get_num("retries", 0).usage()?;
    let max_backoff_ms: u64 = args.get_num("max-backoff-ms", 2000).usage()?;
    if retries > 0 && sends.is_empty() {
        return Err(CliError::Usage(
            "--retries reads one response per request (framed mode) and needs --send <line>".into(),
        ));
    }
    match (args.get("socket"), args.get("tcp")) {
        (Some(path), None) => {
            #[cfg(unix)]
            {
                let stream = UnixStream::connect(path)
                    .map_err(|e| CliError::Runtime(format!("connect {path}: {e}")))?;
                if retries > 0 {
                    return run_client_framed(stream, &sends, retries, max_backoff_ms);
                }
                let shutdown = |s: &UnixStream| s.shutdown(std::net::Shutdown::Write);
                run_client(stream, shutdown, &sends)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(CliError::Usage(
                    "--socket needs a Unix platform; use --tcp".into(),
                ))
            }
        }
        (None, Some(addr)) => {
            let stream = TcpStream::connect(addr)
                .map_err(|e| CliError::Runtime(format!("connect {addr}: {e}")))?;
            if retries > 0 {
                return run_client_framed(stream, &sends, retries, max_backoff_ms);
            }
            let shutdown = |s: &TcpStream| s.shutdown(std::net::Shutdown::Write);
            run_client(stream, shutdown, &sends)
        }
        (None, None) => Err(CliError::Usage(
            "client needs --socket <path> or --tcp <addr:port>".into(),
        )),
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--socket and --tcp are mutually exclusive".into(),
        )),
    }
}

/// One response line, without the trailing newline. EOF mid-response is
/// a transport error in framed mode — the server never half-answers.
fn read_line<S: Read>(stream: &mut BufReader<S>) -> Result<String, CliError> {
    let mut line = String::new();
    let n = stream
        .read_line(&mut line)
        .map_err(|e| CliError::Runtime(format!("receive: {e}")))?;
    if n == 0 {
        return Err(CliError::Runtime(
            "receive: connection closed mid-response".into(),
        ));
    }
    if line.ends_with('\n') {
        line.pop();
    }
    Ok(line)
}

/// Whether a response head opens a multi-line body (`OK <n>` / `DOCS
/// <n>` rows up to `END`). `OK draining` and every `ERR`/`BUSY`/`PONG`
/// is a single line.
fn is_multiline(head: &str) -> bool {
    let mut toks = head.split_whitespace();
    matches!(toks.next(), Some("OK") | Some("DOCS"))
        && toks.next().is_some_and(|n| n.parse::<u64>().is_ok())
}

/// The server's `retry-after-ms=<t>` hint, scaled exponentially by the
/// attempt number, capped, and jittered into `[cap/2, cap]` so a burst
/// of shed clients does not reconverge on the same instant.
fn backoff_ms(retry_after: u64, attempt: u32, max_backoff_ms: u64, rng: &mut u64) -> u64 {
    let cap = retry_after
        .max(1)
        .saturating_mul(1u64 << attempt.min(16))
        .min(max_backoff_ms.max(1));
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let span = cap - cap / 2 + 1;
    cap / 2 + (*rng >> 33) % span
}

/// Framed client: per-request request/response cycles over one
/// connection, honoring `BUSY retry-after-ms` with bounded backoff.
fn run_client_framed<S: Read + Write>(
    stream: S,
    sends: &[&str],
    retries: u32,
    max_backoff_ms: u64,
) -> Result<(), CliError> {
    let mut stream = BufReader::new(stream);
    let mut out = Out::new(std::io::stdout());
    // Small LCG for jitter: no rand dependency, seeded per process.
    let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(std::process::id());
    for line in sends {
        let mut attempt = 0u32;
        loop {
            stream
                .get_mut()
                .write_all(line.as_bytes())
                .and_then(|()| stream.get_mut().write_all(b"\n"))
                .and_then(|()| stream.get_mut().flush())
                .map_err(|e| CliError::Runtime(format!("send: {e}")))?;
            let head = read_line(&mut stream)?;
            if let Some(rest) = head.strip_prefix("BUSY") {
                if attempt < retries {
                    let retry_after = rest
                        .split_whitespace()
                        .find_map(|tok| tok.strip_prefix("retry-after-ms="))
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(100);
                    let delay = backoff_ms(retry_after, attempt, max_backoff_ms, &mut rng);
                    attempt += 1;
                    eprintln!("tasm client: BUSY, retry {attempt}/{retries} in {delay}ms");
                    std::thread::sleep(Duration::from_millis(delay));
                    continue;
                }
                // Retries exhausted: fall through and report the BUSY.
            }
            out.raw(head.as_bytes())?;
            out.raw(b"\n")?;
            if is_multiline(&head) {
                loop {
                    let row = read_line(&mut stream)?;
                    out.raw(row.as_bytes())?;
                    out.raw(b"\n")?;
                    if row == "END" {
                        break;
                    }
                }
            }
            break;
        }
    }
    out.flush()
}

fn run_client<S: Read + Write>(
    mut stream: S,
    shutdown_write: impl Fn(&S) -> std::io::Result<()>,
    sends: &[&str],
) -> Result<(), CliError> {
    if sends.is_empty() {
        // Raw mode: forward stdin bytes verbatim (no newline fixing —
        // deliberately, so torn requests can be produced).
        std::io::copy(&mut std::io::stdin().lock(), &mut stream)
            .map_err(|e| CliError::Runtime(format!("send: {e}")))?;
    } else {
        for line in sends {
            stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .map_err(|e| CliError::Runtime(format!("send: {e}")))?;
        }
    }
    stream
        .flush()
        .and_then(|()| shutdown_write(&stream))
        .map_err(|e| CliError::Runtime(format!("send: {e}")))?;
    // Stream every response byte to stdout until the server closes.
    let mut out = Out::new(std::io::stdout());
    let mut buf = [0u8; 8 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.raw(&buf[..n])?,
            Err(e) => return Err(CliError::Runtime(format!("receive: {e}"))),
        }
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_alias_prefers_the_explicit_name() {
        assert_eq!(
            doc_alias("dblp=/data/d.xml"),
            ("dblp".into(), "/data/d.xml")
        );
        assert_eq!(
            doc_alias("/data/corpus.xml"),
            ("corpus".into(), "/data/corpus.xml")
        );
        assert_eq!(doc_alias("plain.pq"), ("plain".into(), "plain.pq"));
    }

    #[test]
    fn framing_distinguishes_single_and_multi_line_heads() {
        assert!(is_multiline("OK 3"));
        assert!(is_multiline("OK 0 degraded=1/2"));
        assert!(is_multiline("DOCS 2"));
        assert!(!is_multiline("OK draining"));
        assert!(!is_multiline("PONG"));
        assert!(!is_multiline("ERR doc unknown document"));
        assert!(!is_multiline("BUSY retry-after-ms=100"));
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let mut rng = 42u64;
        for attempt in 0..20 {
            let cap = 50u64.saturating_mul(1 << attempt.min(16)).min(1000);
            let d = backoff_ms(50, attempt, 1000, &mut rng);
            assert!(
                d >= cap / 2 && d <= cap,
                "attempt {attempt}: {d} vs cap {cap}"
            );
        }
        // Degenerate hints stay sane.
        assert!(backoff_ms(0, 0, 1000, &mut rng) <= 1);
        assert!(backoff_ms(500, 30, 200, &mut rng) <= 200);
    }
}
