//! The `serve` and `client` subcommands: the resident query daemon and
//! a minimal line-protocol client for scripts and tests.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::time::Duration;

use crate::args::Args;
use crate::errors::{CliError, UsageExt};
use crate::output::Out;
use tasm_core::{Doc, DocStore, QueryParser, Server, ServerConfig};
use tasm_tree::LabelDict;

/// Derives the document alias from `--doc <name=path>` (or the file
/// stem when no `name=` is given).
fn doc_alias(value: &str) -> (String, &str) {
    if let Some((name, path)) = value.split_once('=') {
        if !name.is_empty() {
            return (name.to_string(), path);
        }
    }
    let stem = std::path::Path::new(value)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(value);
    (stem.to_string(), value)
}

fn build_config(args: &Args) -> Result<ServerConfig, CliError> {
    let defaults = ServerConfig::default();
    Ok(ServerConfig {
        workers: args.get_num("workers", defaults.workers).usage()?,
        queue_capacity: args.get_num("queue", defaults.queue_capacity).usage()?,
        max_batch: args.get_num("max-batch", defaults.max_batch).usage()?,
        batch_window: Duration::from_millis(
            args.get_num("batch-window-ms", defaults.batch_window.as_millis() as u64)
                .usage()?,
        ),
        default_deadline: Duration::from_millis(
            args.get_num(
                "default-timeout-ms",
                defaults.default_deadline.as_millis() as u64,
            )
            .usage()?,
        ),
        max_deadline: Duration::from_millis(
            args.get_num("max-timeout-ms", defaults.max_deadline.as_millis() as u64)
                .usage()?,
        ),
        drain_deadline: Duration::from_millis(
            args.get_num(
                "drain-timeout-ms",
                defaults.drain_deadline.as_millis() as u64,
            )
            .usage()?,
        ),
        read_timeout: Duration::from_millis(
            args.get_num("read-timeout-ms", defaults.read_timeout.as_millis() as u64)
                .usage()?,
        ),
        ..defaults
    })
}

/// `tasm serve` — load documents, bind a socket, answer queries until
/// SIGTERM/SIGINT or a client's SHUTDOWN, then drain gracefully.
///
/// Exit code 0 means every admitted request's response reached its
/// socket before the drain deadline; a dirty drain exits 2.
pub fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let mut store = DocStore::new();
    for (name, value) in &args.options {
        if name != "doc" {
            continue;
        }
        let (alias, path) = doc_alias(value);
        let mut dict = LabelDict::new();
        let tree = crate::load_xml(path, &mut dict)?;
        eprintln!(
            "tasm serve: loaded doc '{alias}': {} nodes from {path}",
            tree.len()
        );
        store.insert(Doc::new(alias, tree, dict));
    }
    if store.is_empty() {
        return Err(CliError::Usage(
            "serve needs at least one --doc <name=file.xml> (or --doc file.xml)".into(),
        ));
    }
    let cfg = build_config(args)?;
    // Queries arrive over the wire as XML; parse them with the same
    // parser the one-shot CLI uses so rankings are identical.
    let parser: QueryParser =
        Arc::new(|text, dict| tasm_xml::parse_tree_str(text, dict).map_err(|e| e.to_string()));
    let server = Server::new(cfg, store, Some(parser));
    let stop = crate::signal::install_term_flag();

    let socket = args.get("socket");
    let tcp = args.get("tcp");
    match (socket, tcp) {
        (Some(path), None) => {
            #[cfg(unix)]
            {
                // A previous crash can leave the socket file behind;
                // binding over it needs the stale file gone.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| CliError::Runtime(format!("bind {path}: {e}")))?;
                eprintln!("tasm serve: listening on unix socket {path}");
                let served = server.serve_unix(&listener, Some(stop));
                let clean = server.drain();
                let _ = std::fs::remove_file(path);
                served.map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
                finish(clean)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(CliError::Usage(
                    "--socket needs a Unix platform; use --tcp".into(),
                ))
            }
        }
        (None, Some(addr)) => {
            let listener = TcpListener::bind(addr)
                .map_err(|e| CliError::Runtime(format!("bind {addr}: {e}")))?;
            eprintln!(
                "tasm serve: listening on tcp {}",
                listener
                    .local_addr()
                    .map_err(|e| CliError::Runtime(e.to_string()))?
            );
            let served = server.serve_tcp(&listener, Some(stop));
            let clean = server.drain();
            served.map_err(|e| CliError::Runtime(format!("serve: {e}")))?;
            finish(clean)
        }
        (None, None) => Err(CliError::Usage(
            "serve needs --socket <path> or --tcp <addr:port>".into(),
        )),
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--socket and --tcp are mutually exclusive".into(),
        )),
    }
}

fn finish(clean: bool) -> Result<(), CliError> {
    if clean {
        eprintln!("tasm serve: drained cleanly");
        Ok(())
    } else {
        Err(CliError::Runtime(
            "drain deadline passed with requests still in flight".into(),
        ))
    }
}

/// `tasm client` — connect, send requests, stream responses to stdout.
///
/// Requests come from repeated `--send <line>` options, or — when none
/// are given — verbatim from stdin (including a final line *without* a
/// newline, which is how the truncated-request path is exercised).
/// The client transports; it does not interpret. Server-side `ERR`/
/// `BUSY` lines still exit 0 — scripts branch on the response text.
pub fn cmd_client(args: &Args) -> Result<(), CliError> {
    let sends: Vec<&str> = args.get_all("send");
    match (args.get("socket"), args.get("tcp")) {
        (Some(path), None) => {
            #[cfg(unix)]
            {
                let stream = UnixStream::connect(path)
                    .map_err(|e| CliError::Runtime(format!("connect {path}: {e}")))?;
                let shutdown = |s: &UnixStream| s.shutdown(std::net::Shutdown::Write);
                run_client(stream, shutdown, &sends)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(CliError::Usage(
                    "--socket needs a Unix platform; use --tcp".into(),
                ))
            }
        }
        (None, Some(addr)) => {
            let stream = TcpStream::connect(addr)
                .map_err(|e| CliError::Runtime(format!("connect {addr}: {e}")))?;
            let shutdown = |s: &TcpStream| s.shutdown(std::net::Shutdown::Write);
            run_client(stream, shutdown, &sends)
        }
        (None, None) => Err(CliError::Usage(
            "client needs --socket <path> or --tcp <addr:port>".into(),
        )),
        (Some(_), Some(_)) => Err(CliError::Usage(
            "--socket and --tcp are mutually exclusive".into(),
        )),
    }
}

fn run_client<S: Read + Write>(
    mut stream: S,
    shutdown_write: impl Fn(&S) -> std::io::Result<()>,
    sends: &[&str],
) -> Result<(), CliError> {
    if sends.is_empty() {
        // Raw mode: forward stdin bytes verbatim (no newline fixing —
        // deliberately, so torn requests can be produced).
        std::io::copy(&mut std::io::stdin().lock(), &mut stream)
            .map_err(|e| CliError::Runtime(format!("send: {e}")))?;
    } else {
        for line in sends {
            stream
                .write_all(line.as_bytes())
                .and_then(|()| stream.write_all(b"\n"))
                .map_err(|e| CliError::Runtime(format!("send: {e}")))?;
        }
    }
    stream
        .flush()
        .and_then(|()| shutdown_write(&stream))
        .map_err(|e| CliError::Runtime(format!("send: {e}")))?;
    // Stream every response byte to stdout until the server closes.
    let mut out = Out::new(std::io::stdout());
    let mut buf = [0u8; 8 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.raw(&buf[..n])?,
            Err(e) => return Err(CliError::Runtime(format!("receive: {e}"))),
        }
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_alias_prefers_the_explicit_name() {
        assert_eq!(
            doc_alias("dblp=/data/d.xml"),
            ("dblp".into(), "/data/d.xml")
        );
        assert_eq!(
            doc_alias("/data/corpus.xml"),
            ("corpus".into(), "/data/corpus.xml")
        );
        assert_eq!(doc_alias("plain.pq"), ("plain".into(), "plain.pq"));
    }
}
