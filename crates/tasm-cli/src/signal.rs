//! SIGTERM/SIGINT as a poll-able flag, with no dependencies.
//!
//! The daemon's accept loop is a nonblocking poll, so graceful shutdown
//! only needs a flag the signal handler can flip. The handler body is a
//! single atomic store — async-signal-safe by construction.
//!
//! This is the one place in the workspace that touches `unsafe`:
//! registering the handler goes through libc's `signal(2)`, declared
//! here directly so the CLI stays dependency-free. `tasm-core` forbids
//! unsafe code outright, which is why this lives in the binary crate.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        /// libc `signal(2)`; the handler is passed as a raw fn address.
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_term(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers (best effort) and returns the flag
/// they flip. On non-Unix targets the flag simply never fires.
#[allow(unsafe_code)]
pub fn install_term_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    unsafe {
        ffi::signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        ffi::signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }
    &TERM_REQUESTED
}
