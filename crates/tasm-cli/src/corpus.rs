//! The `corpus` subcommand family: build, extend, verify and query the
//! crash-safe corpus store (`tasm-index`'s `Corpus`).
//!
//! * `corpus build` — initialize a corpus directory and index documents
//! * `corpus add`   — index more documents into an existing corpus
//! * `corpus fsck`  — verify every shard; `--repair` re-indexes damaged
//!   shards from their recorded sources
//! * `corpus query` — cross-document top-k over the healthy shards,
//!   with an explicit `degraded` marker when shards are quarantined
//!
//! `fsck` without `--repair` exits 2 when any shard is quarantined so
//! scripts and CI can branch on corpus health; `query` never aborts on
//! shard damage — it answers from the healthy shards and says so.
//! `query --strict` additionally exits 2 *after* printing the healthy
//! rows when the answer is degraded, for pipelines that must not act on
//! a partial corpus. `query --threads N` hands the shard-level
//! scheduler N threads (0 = all cores); `--stats` then shows `# shard`
//! lines with each shard's wall clock and funnel.

use std::time::Instant;

use crate::args::Args;
use crate::errors::{CliError, UsageExt};
use crate::{load_xml, output, print_scan_stats};
use tasm_core::{tasm_corpus_batch_with_stats, BatchQuery, TasmOptions};
use tasm_index::Corpus;
use tasm_ted::{TedKernel, TedStats, UnitCost};
use tasm_tree::{LabelDict, Tree};

pub fn cmd_corpus(args: &Args) -> Result<(), CliError> {
    match args.positional.first().map(String::as_str) {
        Some("build") => cmd_build(args),
        Some("add") => cmd_add(args),
        Some("fsck") => cmd_fsck(args),
        Some("query") => cmd_query(args),
        Some(other) => Err(CliError::Usage(format!(
            "unknown corpus subcommand '{other}'; expected build|add|fsck|query"
        ))),
        None => Err(CliError::Usage(
            "corpus needs a subcommand: build|add|fsck|query".into(),
        )),
    }
}

/// Shared by `build` and `add`: index every `--doc <name=path>` into
/// `corpus`, recording the source path so `fsck --repair` can re-index.
fn add_docs(corpus: &mut Corpus, args: &Args) -> Result<usize, CliError> {
    let mut added = 0usize;
    for (name, value) in &args.options {
        if name != "doc" {
            continue;
        }
        let (alias, path) = crate::serve::doc_alias(value);
        let mut dict = LabelDict::new();
        let tree = load_xml(path, &mut dict)?;
        corpus
            .add(&alias, &tree, &dict, Some(path))
            .map_err(|e| CliError::Runtime(e.to_string()))?;
        eprintln!(
            "tasm corpus: indexed '{alias}': {} nodes from {path}",
            tree.len()
        );
        added += 1;
    }
    Ok(added)
}

fn cmd_build(args: &Args) -> Result<(), CliError> {
    let dir = args.require("dir").usage()?;
    let mut corpus = Corpus::create(dir).map_err(|e| CliError::Runtime(e.to_string()))?;
    let added = add_docs(&mut corpus, args)?;
    eprintln!(
        "tasm corpus: built {dir}: {added} shard(s), generation {}",
        corpus.generation()
    );
    Ok(())
}

fn cmd_add(args: &Args) -> Result<(), CliError> {
    let dir = args.require("dir").usage()?;
    let mut corpus = Corpus::open(dir).map_err(|e| CliError::Runtime(e.to_string()))?;
    let added = add_docs(&mut corpus, args)?;
    if added == 0 {
        return Err(CliError::Usage(
            "corpus add needs at least one --doc <name=path>".into(),
        ));
    }
    eprintln!(
        "tasm corpus: {dir} now holds {} shard(s), generation {}",
        corpus.total_shards(),
        corpus.generation()
    );
    Ok(())
}

fn cmd_fsck(args: &Args) -> Result<(), CliError> {
    let dir = args.require("dir").usage()?;
    let repair = args.flag("repair");
    let mut corpus = Corpus::open(dir).map_err(|e| CliError::Runtime(e.to_string()))?;
    let mut out = output::stdout();
    let mut repaired = 0usize;
    if repair {
        // Re-index every quarantined shard whose manifest record still
        // knows its source document; shards added without a recorded
        // source stay quarantined (reported below).
        let damaged: Vec<String> = corpus
            .quarantined()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        for name in damaged {
            let source = corpus
                .manifest()
                .shards
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| s.source.clone());
            let Some(source) = source else {
                eprintln!("tasm corpus: cannot repair '{name}': no source recorded");
                continue;
            };
            let mut dict = LabelDict::new();
            let tree = load_xml(&source, &mut dict)?;
            corpus
                .repair_shard(&name, &tree, &dict)
                .map_err(|e| CliError::Runtime(format!("repair '{name}': {e}")))?;
            wln!(out, "repaired {name} (re-indexed from {source})")?;
            repaired += 1;
        }
    }
    let healthy = corpus.healthy_count();
    let total = corpus.total_shards();
    wln!(
        out,
        "corpus {dir}: generation {}, {healthy}/{total} shard(s) healthy",
        corpus.generation()
    )?;
    for r in corpus.quarantined() {
        wln!(
            out,
            "quarantined {}: {} ({})",
            r.name,
            r.error,
            r.path.display()
        )?;
    }
    out.flush()?;
    let _ = repaired;
    if healthy < total {
        return Err(CliError::Runtime(format!(
            "{} of {total} shard(s) quarantined{}",
            total - healthy,
            if repair { "" } else { "; rerun with --repair" }
        )));
    }
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), CliError> {
    let dir = args.require("dir").usage()?;
    let mut dict = LabelDict::new();
    // Queries in command-line order, files and literals interleaved.
    let mut queries: Vec<Tree> = Vec::new();
    for (name, value) in &args.options {
        match name.as_str() {
            "query" => queries.push(load_xml(value, &mut dict)?),
            "query-str" => queries.push(
                tasm_xml::parse_tree_str(value, &mut dict)
                    .map_err(|e| CliError::Runtime(format!("--query-str: {e}")))?,
            ),
            _ => {}
        }
    }
    if queries.is_empty() {
        return Err(CliError::Usage(
            "missing required option --query <file> (or --query-str '<xml>')".into(),
        ));
    }
    let k: usize = args.get_num("k", 5).usage()?;
    let threads: usize = args.get_num("threads", 1).usage()?;
    let kernel: TedKernel = args
        .get("kernel")
        .unwrap_or("auto")
        .parse()
        .map_err(CliError::Usage)?;
    let opts = TasmOptions {
        kernel,
        ..Default::default()
    };
    let want_stats = args.flag("stats");
    let strict = args.flag("strict");
    let mut stats = TedStats::new();
    let sink = want_stats.then_some(&mut stats);

    let corpus = Corpus::open(dir).map_err(|e| CliError::Runtime(e.to_string()))?;
    // Shard damage degrades the answer instead of failing the query;
    // say so up front, on stderr, where it cannot be mistaken for rows.
    for r in corpus.quarantined() {
        eprintln!(
            "tasm corpus: warning: quarantined '{}': {}",
            r.name, r.error
        );
    }
    let bqs: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|query| BatchQuery { query, k })
        .collect();
    let t0 = Instant::now();
    let result =
        tasm_corpus_batch_with_stats(&bqs, &dict, &corpus, &UnitCost, 1, opts, threads, sink);
    let elapsed = t0.elapsed();
    let (rankings, status, scan, lanes, shard_stats) = (
        result.rankings,
        result.status,
        result.scan,
        result.lane_scans,
        result.shard_stats,
    );

    let batch = queries.len() > 1;
    let mut out = output::stdout();
    for (qi, (query, matches)) in queries.iter().zip(&rankings).enumerate() {
        wln!(
            out,
            "# {}: {} nodes, k = {k}, corpus = {dir} ({} shard(s)){}",
            if batch {
                format!("query {}", qi + 1)
            } else {
                "query".to_string()
            },
            query.len(),
            status.healthy,
            if threads != 1 {
                format!(", threads = {threads}")
            } else {
                String::new()
            }
        )?;
        wln!(
            out,
            "{:<6} {:<20} {:>10} {:>10} {:>8}",
            "rank",
            "doc",
            "node",
            "distance",
            "size"
        )?;
        for (rank, m) in matches.iter().enumerate() {
            wln!(
                out,
                "{:<6} {:<20} {:>10} {:>10} {:>8}",
                rank + 1,
                m.doc,
                m.hit.root.post(),
                m.hit.distance.to_string(),
                m.hit.size
            )?;
        }
    }
    if status.is_degraded() {
        wln!(
            out,
            "# degraded: {} shard(s) answered — quarantined shards excluded",
            status.marker()
        )?;
    }
    wln!(out, "# elapsed: {elapsed:?}")?;
    if want_stats {
        wln!(
            out,
            "# relevant subtrees computed: {} (largest {} nodes), ted calls: {}",
            stats.total_relevant(),
            stats.max_relevant_size(),
            stats.ted_calls,
        )?;
        print_scan_stats(&mut out, &scan)?;
        // Where the corpus time went, shard by shard, in manifest
        // order — overlapping shards each report their own wall clock.
        for s in &shard_stats {
            wln!(
                out,
                "# shard {} ({}): {:.3} ms, candidates {}, evaluated {}",
                s.shard,
                s.name,
                s.millis(),
                s.scan.candidates,
                s.scan.evaluated,
            )?;
        }
        if batch {
            for (i, lane) in lanes.iter().enumerate() {
                wln!(
                    out,
                    "# lane {} funnel: size-skipped {}, histogram-pruned {}, \
                     sed-pruned {}, evaluated {} (prune rate {:.1}%)",
                    i + 1,
                    lane.pruned_size,
                    lane.pruned_histogram,
                    lane.pruned_sed,
                    lane.evaluated,
                    100.0 * lane.prune_rate(),
                )?;
            }
        }
    }
    out.flush()?;
    // --strict turns a degraded answer into a failure *after* the
    // healthy rows have been printed: scripts that must not act on a
    // partial corpus can branch on the exit code, and interactive use
    // still sees everything the healthy shards found.
    if strict && status.is_degraded() {
        return Err(CliError::Runtime(format!(
            "degraded answer: {} shard(s) answered (--strict)",
            status.marker()
        )));
    }
    Ok(())
}
