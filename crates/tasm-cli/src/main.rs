//! `tasm` — Top-k Approximate Subtree Matching from the command line.
//!
//! Subcommands:
//!
//! * `query`  — rank the subtrees of an XML document against a query
//! * `ted`    — tree edit distance between two XML documents
//! * `gen`    — generate synthetic datasets (xmark / dblp / psd / random)
//! * `stats`  — shape statistics of an XML document
//! * `candidates` — run the prefix-ring-buffer pruning and report stats
//! * `index`  — build a label-indexed postorder file (`.pqi`) that
//!   `query --index` answers from without scanning the document
//! * `corpus` — crash-safe multi-document store: build/add/fsck/query a
//!   directory of shards behind a checksummed manifest
//! * `serve`  — resident query daemon over a Unix or TCP socket
//! * `client` — line-protocol client for `serve`
//!
//! Exit codes: 0 success (including output truncated by a closed
//! pipe), 1 usage error, 2 runtime/I-O/protocol error.
//!
//! Run `tasm help` for details.

mod args;
mod errors;
#[macro_use]
mod output;
mod corpus;
mod serve;
mod signal;

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::time::Instant;

use args::Args;
use errors::{CliError, RuntimeExt, UsageExt};
use tasm_core::{
    prb_pruning_stats, simple_pruning, tasm_batch_parallel_stream_with_stats, tasm_dynamic,
    tasm_indexed_batch_with_stats, tasm_naive, tasm_parallel_stream_with_stats,
    tasm_postorder_with_workspace, threshold_for_query, BatchQuery, ScanStats, TasmOptions,
    TasmWorkspace,
};
use tasm_data::{
    dblp_tree, psd_tree, random_tree, xmark_tree, DblpConfig, PsdConfig, RandomTreeConfig,
    XMarkConfig,
};
use tasm_index::IndexedDocument;
use tasm_ted::{ted, TedKernel, TedStats, UnitCost};
use tasm_tree::postfile::{save_tree, PostFileReader};
use tasm_tree::{LabelDict, PostorderQueue, Tree, TreeQueue};
use tasm_xml::{parse_tree, tree_to_xml, XmlPostorderQueue};

const HELP: &str = "\
tasm — Top-k Approximate Subtree Matching (ICDE 2010)

USAGE:
    tasm <command> [options]

COMMANDS:
    query       Rank document subtrees by tree edit distance to a query
                  --query <file.xml>     query XML (or --query-str '<a/>');
                                         repeat either flag to run a batch
                                         of queries in ONE document scan
                  --doc <file.xml>       document XML
                  --k <n>                ranking size          [default: 5]
                  --algorithm <name>     postorder|dynamic|naive [postorder]
                  --threads <n>          shard candidate evaluation across
                                         n worker threads (0 = all cores;
                                         postorder only). The document
                                         still STREAMS — no materialized
                                         tree — and composes with repeated
                                         --query (batch×parallel) [default: 1]
                  --index <file.pqi>     answer from a prebuilt label
                                         index (see `index`) instead of
                                         scanning --doc; composes with
                                         repeated --query and --threads
                  --kernel <name>        TED kernel for surviving
                                         candidates: auto picks the
                                         cheaper decomposition per query
                                         shape, zs/strategy pin the
                                         left/right path. All three return
                                         identical rankings
                                         auto|zs|strategy       [auto]
                  --show-xml             print matched subtrees as XML
                  --stats                print work statistics and the
                                         per-tier pruning funnel (per query
                                         lane in batch mode)

    ted         Tree edit distance between two XML files
                  --left <a.xml> --right <b.xml>

    gen         Generate a synthetic dataset as XML on stdout or --out
                  --dataset <name>       xmark|dblp|psd|random  [dblp]
                  --nodes <n>            approximate node count [10000]
                  --seed <n>             RNG seed               [42]
                  --out <file.xml>       output path            [stdout]

    stats       Shape statistics of an XML document
                  --doc <file.xml>

    candidates  Prefix ring buffer pruning statistics
                  --doc <file.xml> --tau <n> [--compare-simple]

    convert     Parse XML once and store it as a binary postorder file
                (.pq), which all other commands accept in place of XML
                  --doc <file.xml> --out <file.pq>

    index       Index a document once into a .pqi file: the .pq node
                stream plus per-label postings and frequency-ordered
                labels. `query --index` then generates candidates from
                the index instead of scanning the whole document
                  --doc <file.xml|file.pq> --out <file.pqi>

    corpus      Crash-safe multi-document store: a directory of .pqi
                shards plus a versioned, checksummed MANIFEST, updated
                atomically — a crash mid-update always leaves the
                previous generation readable. Damaged shards are
                quarantined, never fatal: queries answer from the
                healthy shards with an explicit degraded marker
                  corpus build --dir <d> --doc <name=f.xml> ...
                                         initialize and index documents
                  corpus add   --dir <d> --doc <name=f.xml> ...
                                         index more documents
                  corpus fsck  --dir <d> [--repair]
                                         verify every shard (exit 2 when
                                         any is quarantined); --repair
                                         re-indexes damaged shards from
                                         their recorded sources
                  corpus query --dir <d> --query <f.xml> [--k <n>]
                               [--threads <n>] [--kernel <name>]
                               [--stats] [--strict]
                                         cross-document top-k over the
                                         healthy shards (rows carry the
                                         source document); --threads
                                         splits the budget across shards
                                         first (0 = all cores), --stats
                                         adds per-shard timing, --strict
                                         exits 2 on a degraded answer

    serve       Resident query daemon: documents stay parsed, queries
                multiplex onto the batch engine, failures stay contained
                (per-request deadlines, BUSY load shedding, panic
                isolation, graceful drain on SIGTERM/SHUTDOWN)
                  --socket <path>        listen on a Unix socket
                  --tcp <addr:port>      …or on TCP (mutually exclusive)
                  --doc <name=file.xml>  resident document (repeatable;
                                         name defaults to the file stem)
                  --corpus <name=dir>    resident corpus served in
                                         degraded mode when shards are
                                         quarantined (repeatable)
                  --workers <n>          evaluation threads     [2]
                  --corpus-threads <n>   shard-scheduler threads per
                                         corpus request (0=cores) [1]
                  --queue <n>            admission queue bound  [64]
                  --max-batch <n>        max shared-scan batch  [16]
                  --batch-window-ms <n>  batch gather window    [1]
                  --default-timeout-ms <n>  deadline when a request
                                         names none             [2000]
                  --max-timeout-ms <n>   cap on client deadlines [30000]
                  --drain-timeout-ms <n> graceful drain budget  [5000]
                  --read-timeout-ms <n>  idle connection cutoff [10000]

    client      Send protocol lines to a running daemon and print the
                responses (transport only: server ERR/BUSY still exit 0)
                  --socket <path> | --tcp <addr:port>
                  --send <line>          request line (repeatable);
                                         without it, stdin is forwarded
                                         verbatim
                  --retries <n>          honor BUSY retry-after-ms with
                                         bounded jittered exponential
                                         backoff (framed mode; needs
                                         --send)                [0]
                  --max-backoff-ms <n>   backoff ceiling        [2000]

    help        Show this message

PROTOCOL (serve/client, newline-delimited):
    PING                                  -> PONG
    DOCS                                  -> DOCS <n>, rows, END
    QUERY doc=<name> [k=<n>] [timeout=<ms>] [stats=1] q=<xml>
                                          -> OK <n>[ degraded=<h>/<t>],
                                             '<rank> <node> <distance>
                                             <size>[ <doc>]' rows,
                                             optional STATS line, END
    SHUTDOWN                              -> OK draining
    errors: ERR <proto|parse|doc|timeout|internal> <message>
    overload: BUSY retry-after-ms=<n>
";

fn main() -> ExitCode {
    let args = Args::from_env();
    let result = match args.command.as_deref() {
        Some("query") => cmd_query(&args),
        Some("ted") => cmd_ted(&args),
        Some("gen") => cmd_gen(&args),
        Some("stats") => cmd_stats(&args),
        Some("candidates") => cmd_candidates(&args),
        Some("convert") => cmd_convert(&args),
        Some("index") => cmd_index(&args),
        Some("corpus") => corpus::cmd_corpus(&args),
        Some("serve") => serve::cmd_serve(&args),
        Some("client") => serve::cmd_client(&args),
        Some("help") | None => {
            let mut out = output::stdout();
            out.raw(HELP.as_bytes()).and_then(|()| out.flush())
        }
        Some(other) => Err(CliError::Usage(format!(
            "unknown command '{other}'; see `tasm help`"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Loads a document: `.pq` postorder files are streamed directly, anything
/// else is parsed as XML. The file's labels are re-interned into `dict`.
fn load_xml(path: &str, dict: &mut LabelDict) -> Result<Tree, CliError> {
    if path.ends_with(".pq") {
        let mut reader =
            PostFileReader::open(path).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
        // Remap the file's label ids into the caller's dictionary.
        let file_dict = reader.dict().clone();
        let mut entries = Vec::new();
        while let Some(e) = reader.dequeue() {
            entries.push((dict.intern(file_dict.resolve(e.label)), e.size));
        }
        // A short read ends the stream silently; a truncated file must
        // not pass as a smaller document even when the surviving prefix
        // happens to form a valid tree.
        check_pq_complete(&reader, path)?;
        return Tree::from_postorder(entries)
            .map_err(|e| CliError::Runtime(format!("{path}: {e}")));
    }
    let file =
        File::open(path).map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
    parse_tree(BufReader::new(file), dict).map_err(|e| CliError::Runtime(format!("{path}: {e}")))
}

fn cmd_convert(args: &Args) -> Result<(), CliError> {
    let doc_path = args.require("doc").usage()?;
    let out = args.require("out").usage()?;
    let mut dict = LabelDict::new();
    let tree = load_xml(doc_path, &mut dict)?;
    save_tree(out, &tree, &dict).map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
    let in_size = std::fs::metadata(doc_path).map(|m| m.len()).unwrap_or(0);
    let out_size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "converted {} nodes: {doc_path} ({in_size} B) -> {out} ({out_size} B)",
        tree.len()
    );
    Ok(())
}

fn cmd_index(args: &Args) -> Result<(), CliError> {
    let doc_path = args.require("doc").usage()?;
    let out = args.require("out").usage()?;
    let mut dict = LabelDict::new();
    let tree = load_xml(doc_path, &mut dict)?;
    let t0 = Instant::now();
    let idx = IndexedDocument::save(out, &tree, &dict)
        .map_err(|e| CliError::Runtime(format!("{out}: {e}")))?;
    let out_size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "indexed {} nodes, {} distinct labels: {doc_path} -> {out} ({out_size} B, {:?})",
        tree.len(),
        idx.dict().len(),
        t0.elapsed()
    );
    Ok(())
}

/// Re-interns a query's labels into a postorder file's dictionary so it
/// can be matched against the file's label ids.
fn reencode_query(query: &Tree, dict: &LabelDict, file_dict: &mut LabelDict) -> Tree {
    let entries: Vec<_> = query
        .postorder()
        .map(|(l, s)| (file_dict.intern(dict.resolve(l)), s))
        .collect();
    Tree::from_postorder(entries).expect("query re-encoding is valid")
}

/// Fails a `.pq` scan that ended before the header-promised node count —
/// a truncated file must not silently pass as a smaller document.
fn check_pq_complete<R: std::io::Read>(
    reader: &PostFileReader<R>,
    doc_path: &str,
) -> Result<(), CliError> {
    if reader.remaining_nodes() > 0 {
        return Err(CliError::Runtime(format!(
            "{doc_path}: truncated postorder file ({} of {} nodes missing)",
            reader.remaining_nodes(),
            reader.total_nodes()
        )));
    }
    // Entry count intact but the trailer disagrees: bit rot inside the
    // node stream (v1 CRC trailer, satellite of the corpus-store PR).
    if let Some(msg) = reader.integrity_error() {
        return Err(CliError::Runtime(format!("{doc_path}: {msg}")));
    }
    Ok(())
}

/// Opens `doc_path` as a postorder stream and runs `f` over it,
/// centralizing the `.pq` vs XML differences for every streaming query
/// path: `.pq` files get the queries re-encoded into the file's
/// dictionary (which then replaces `dict`, since the results refer to
/// its ids) and a truncation check after the scan; XML streams surface
/// mid-stream parse errors.
fn run_over_doc_stream<T>(
    doc_path: &str,
    dict: &mut LabelDict,
    queries: &[Tree],
    f: impl FnOnce(&[Tree], &mut dyn PostorderQueue) -> T,
) -> Result<T, CliError> {
    if doc_path.ends_with(".pq") {
        let mut reader = PostFileReader::open(doc_path)
            .map_err(|e| CliError::Runtime(format!("{doc_path}: {e}")))?;
        let mut file_dict = reader.dict().clone();
        let reencoded: Vec<Tree> = queries
            .iter()
            .map(|q| reencode_query(q, dict, &mut file_dict))
            .collect();
        let out = f(&reencoded, &mut reader);
        check_pq_complete(&reader, doc_path)?;
        *dict = file_dict;
        Ok(out)
    } else {
        let file = File::open(doc_path)
            .map_err(|e| CliError::Runtime(format!("cannot open {doc_path}: {e}")))?;
        let mut queue = XmlPostorderQueue::new(BufReader::new(file), dict);
        let out = f(queries, &mut queue);
        if let Some(e) = queue.take_error() {
            return Err(CliError::Runtime(format!("{doc_path}: {e}")));
        }
        Ok(out)
    }
}

fn cmd_query(args: &Args) -> Result<(), CliError> {
    let mut dict = LabelDict::new();
    // Collect queries in command-line order, even when --query files and
    // --query-str literals are interleaved: output tables are numbered by
    // that order.
    let mut queries: Vec<Tree> = Vec::new();
    for (name, value) in &args.options {
        match name.as_str() {
            "query" => queries.push(load_xml(value, &mut dict)?),
            "query-str" => queries.push(
                tasm_xml::parse_tree_str(value, &mut dict)
                    .map_err(|e| CliError::Runtime(format!("--query-str: {e}")))?,
            ),
            _ => {}
        }
    }
    if queries.is_empty() {
        return Err(CliError::Usage(
            "missing required option --query <file> (or --query-str '<xml>')".into(),
        ));
    }
    let index_path = args.get("index");
    let k: usize = args.get_num("k", 5).usage()?;
    let threads: usize = args.get_num("threads", 1).usage()?;
    let algorithm = args.get("algorithm").unwrap_or("postorder");
    let kernel: TedKernel = args
        .get("kernel")
        .unwrap_or("auto")
        .parse()
        .map_err(CliError::Usage)?;
    let opts = TasmOptions {
        keep_trees: args.flag("show-xml"),
        kernel,
        ..Default::default()
    };
    let mut stats = TedStats::new();
    let want_stats = args.flag("stats");
    let batch = queries.len() > 1;
    let parallel = threads != 1;
    if batch && algorithm != "postorder" {
        return Err(CliError::Usage(format!(
            "--algorithm {algorithm} evaluates a single query; batch mode needs postorder"
        )));
    }
    if parallel && algorithm != "postorder" {
        return Err(CliError::Usage(format!(
            "--threads applies to --algorithm postorder, not {algorithm}"
        )));
    }
    if index_path.is_some() && algorithm != "postorder" {
        return Err(CliError::Usage(format!(
            "--index generates candidates for the postorder engine, not --algorithm {algorithm}"
        )));
    }
    let sink = want_stats.then_some(&mut stats);
    // One evaluation workspace for the whole run: the candidate loop is
    // allocation-free in steady state (PR-2 tentpole).
    let mut ws = TasmWorkspace::new();
    // Scan + pruning-funnel statistics of the run, when the scan-engine
    // path produced them (postorder single/batch/parallel).
    let mut scan_stats: Option<ScanStats> = None;
    // Per-query-lane stats of a batch run (sequential or sharded).
    let mut lane_stats: Option<Vec<ScanStats>> = None;

    let t0 = Instant::now();
    let rankings: Vec<Vec<tasm_core::Match>> = if let Some(ipath) = index_path {
        // Scan-free candidate generation from the prebuilt .pqi index:
        // candidate regions come from the subtree-size column, bounded
        // per query by the label postings, and only surviving regions
        // are materialized and evaluated.
        let idx =
            IndexedDocument::open(ipath).map_err(|e| CliError::Runtime(format!("{ipath}: {e}")))?;
        let bqs: Vec<BatchQuery<'_>> = queries
            .iter()
            .map(|query| BatchQuery { query, k })
            .collect();
        let (r, scan, lanes) =
            tasm_indexed_batch_with_stats(&bqs, &dict, &idx, &UnitCost, 1, opts, threads, sink);
        scan_stats = Some(scan);
        if batch {
            lane_stats = Some(lanes);
        }
        // Matched node ids (and kept subtrees) live in the index's
        // frequency-ordered label space.
        dict = idx.dict().clone();
        r
    } else if batch {
        // All queries share ONE streaming scan; with --threads > 1 the
        // candidate segments are sharded across workers and each worker
        // fans them out to every query lane (batch×parallel).
        let doc_path = args.require("doc").usage()?;
        let (r, scan, lanes) = run_over_doc_stream(doc_path, &mut dict, &queries, |qs, queue| {
            let bqs: Vec<BatchQuery<'_>> = qs.iter().map(|query| BatchQuery { query, k }).collect();
            tasm_batch_parallel_stream_with_stats(&bqs, queue, &UnitCost, 1, opts, threads, sink)
        })?
        .map_err(|e| format!("{doc_path}: {e}"))
        .runtime()?;
        scan_stats = Some(scan);
        lane_stats = Some(lanes);
        r
    } else {
        let doc_path = args.require("doc").usage()?;
        let matches = match algorithm {
            "postorder" if parallel => {
                // Sharded streaming scan: candidate segments hand off to
                // the workers; the document is never materialized.
                let (m, st) = run_over_doc_stream(doc_path, &mut dict, &queries, |qs, queue| {
                    tasm_parallel_stream_with_stats(
                        &qs[0], queue, k, &UnitCost, 1, opts, threads, sink,
                    )
                })?
                .map_err(|e| format!("{doc_path}: {e}"))
                .runtime()?;
                scan_stats = Some(st);
                m
            }
            "postorder" => {
                let m = run_over_doc_stream(doc_path, &mut dict, &queries, |qs, queue| {
                    tasm_postorder_with_workspace(
                        &qs[0], queue, k, &UnitCost, 1, opts, &mut ws, sink,
                    )
                })?;
                scan_stats = Some(ws.last_scan_stats());
                m
            }
            "dynamic" | "naive" => {
                let query = &queries[0];
                let doc = load_xml(doc_path, &mut dict)?;
                if algorithm == "dynamic" {
                    tasm_dynamic(query, &doc, k, &UnitCost, opts, sink)
                } else {
                    tasm_naive(query, &doc, k, &UnitCost, opts, sink)
                }
            }
            other => return Err(CliError::Usage(format!("unknown algorithm '{other}'"))),
        };
        vec![matches]
    };
    let elapsed = t0.elapsed();

    let mut out = output::stdout();
    for (qi, (query, matches)) in queries.iter().zip(&rankings).enumerate() {
        if batch {
            wln!(
                out,
                "# query {}: {} nodes, k = {k}, algorithm = {algorithm} (batched scan{})",
                qi + 1,
                query.len(),
                if parallel {
                    format!(", threads = {threads}")
                } else {
                    String::new()
                }
            )?;
        } else {
            wln!(
                out,
                "# query: {} nodes, k = {k}, algorithm = {algorithm}{}",
                query.len(),
                if parallel {
                    format!(", threads = {threads}")
                } else {
                    String::new()
                }
            )?;
        }
        wln!(
            out,
            "{:<6} {:>10} {:>10} {:>8}",
            "rank",
            "node",
            "distance",
            "size"
        )?;
        for (rank, m) in matches.iter().enumerate() {
            wln!(
                out,
                "{:<6} {:>10} {:>10} {:>8}",
                rank + 1,
                m.root.post(),
                m.distance.to_string(),
                m.size
            )?;
            if let Some(tree) = &m.tree {
                wln!(out, "       {}", tree_to_xml(tree, &dict))?;
            }
        }
    }
    wln!(out, "# elapsed: {elapsed:?}")?;
    if want_stats {
        let tau = queries
            .iter()
            .map(|q| threshold_for_query(q, &UnitCost, 1, k as u64))
            .max()
            .expect("at least one query");
        wln!(
            out,
            "# relevant subtrees computed: {} (largest {} nodes), ted calls: {}, {} = {}",
            stats.total_relevant(),
            stats.max_relevant_size(),
            stats.ted_calls,
            if batch { "scan tau" } else { "tau" },
            tau,
        )?;
        if let Some(scan) = scan_stats {
            print_scan_stats(&mut out, &scan)?;
        }
        if let Some(lanes) = lane_stats.filter(|l| l.len() > 1) {
            for (i, lane) in lanes.iter().enumerate() {
                wln!(
                    out,
                    "# lane {} funnel: size-skipped {}, histogram-pruned {}, \
                     sed-pruned {}, evaluated {} (prune rate {:.1}%)",
                    i + 1,
                    lane.pruned_size,
                    lane.pruned_histogram,
                    lane.pruned_sed,
                    lane.evaluated,
                    100.0 * lane.prune_rate(),
                )?;
            }
        }
    }
    out.flush()
}

/// Prints the scan-layer counters and the per-tier pruning funnel of a
/// run (shared by single, batch and parallel `query` invocations).
pub(crate) fn print_scan_stats<W: Write>(
    out: &mut output::Out<W>,
    scan: &ScanStats,
) -> Result<(), CliError> {
    wln!(
        out,
        "# scan: {} candidates from {} nodes (peak ring buffer {})",
        scan.candidates,
        scan.nodes_seen,
        scan.peak_buffered
    )?;
    let decisions = scan.eval_decisions();
    let pct = |n: u64| {
        if decisions == 0 {
            0.0
        } else {
            100.0 * n as f64 / decisions as f64
        }
    };
    wln!(
        out,
        "# prune funnel: size-skipped {}, histogram-pruned {} ({:.1}%), \
         sed-pruned {} ({:.1}%), evaluated {} ({:.1}%); cascade prune rate {:.1}%",
        scan.pruned_size,
        scan.pruned_histogram,
        pct(scan.pruned_histogram),
        scan.pruned_sed,
        pct(scan.pruned_sed),
        scan.evaluated,
        pct(scan.evaluated),
        100.0 * scan.prune_rate(),
    )?;
    wln!(
        out,
        "# kernel funnel: zs={} strategy={}",
        scan.evaluated_zs,
        scan.evaluated_strategy,
    )
}

fn cmd_ted(args: &Args) -> Result<(), CliError> {
    let mut dict = LabelDict::new();
    let left = load_xml(args.require("left").usage()?, &mut dict)?;
    let right = load_xml(args.require("right").usage()?, &mut dict)?;
    let t0 = Instant::now();
    let d = ted(&left, &right, &UnitCost);
    let mut out = output::stdout();
    wln!(
        out,
        "delta = {d}  (|left| = {}, |right| = {}, {:?})",
        left.len(),
        right.len(),
        t0.elapsed()
    )?;
    out.flush()
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let dataset = args.get("dataset").unwrap_or("dblp");
    let nodes: usize = args.get_num("nodes", 10_000).usage()?;
    let seed: u64 = args.get_num("seed", 42).usage()?;
    let mut dict = LabelDict::new();
    let tree = match dataset {
        "xmark" => xmark_tree(&mut dict, &XMarkConfig::new(seed, nodes)),
        "dblp" => dblp_tree(&mut dict, &DblpConfig::new(seed, nodes)),
        "psd" => psd_tree(&mut dict, &PsdConfig::new(seed, nodes)),
        "random" => random_tree(
            &mut dict,
            &RandomTreeConfig {
                seed,
                nodes,
                ..Default::default()
            },
        ),
        other => return Err(CliError::Usage(format!("unknown dataset '{other}'"))),
    };
    let xml = tree_to_xml(&tree, &dict);
    match args.get("out") {
        Some(path) => {
            let file = File::create(path)
                .map_err(|e| CliError::Runtime(format!("cannot create {path}: {e}")))?;
            let mut w = BufWriter::new(file);
            w.write_all(xml.as_bytes())
                .and_then(|()| w.flush())
                .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
            eprintln!("wrote {} nodes to {path}", tree.len());
        }
        None => {
            // Large documents are routinely piped into `head`/`grep`;
            // a closed pipe is a clean exit (handled inside Out), and
            // real write failures are runtime errors.
            let mut out = output::stdout();
            out.raw(xml.as_bytes())?;
            out.raw(b"\n")?;
            out.flush()?;
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    let mut dict = LabelDict::new();
    let doc = load_xml(args.require("doc").usage()?, &mut dict)?;
    let s = tasm_tree::stats::TreeStats::of(&doc);
    let mut out = output::stdout();
    wln!(out, "nodes:            {}", s.nodes)?;
    wln!(out, "leaves:           {}", s.leaves)?;
    wln!(out, "height:           {}", s.height)?;
    wln!(out, "max fanout:       {}", s.max_fanout)?;
    wln!(out, "mean fanout:      {:.2}", s.mean_internal_fanout)?;
    wln!(out, "distinct labels:  {}", s.distinct_labels)?;
    for tau in [10u32, 50, 100] {
        wln!(
            out,
            "subtrees <= {tau:>3}:  {:.2}%",
            100.0 * tasm_tree::stats::fraction_below(&doc, tau)
        )?;
    }
    out.flush()
}

fn cmd_candidates(args: &Args) -> Result<(), CliError> {
    let mut dict = LabelDict::new();
    let doc = load_xml(args.require("doc").usage()?, &mut dict)?;
    let tau: u32 = args.get_num("tau", 50).usage()?;
    if tau == 0 {
        // cand(T, 0) is empty by Def. 9 — a zero threshold is always a
        // mistake, and silently clamping it to 1 (the old behavior)
        // reported a plausible-looking leaf-only candidate set.
        return Err(CliError::Usage(
            "--tau must be >= 1: cand(T, 0) is empty by definition".into(),
        ));
    }
    let mut queue = TreeQueue::new(&doc);
    let t0 = Instant::now();
    let st = prb_pruning_stats(&mut queue, tau, None);
    let dt = t0.elapsed();
    let mut out = output::stdout();
    wln!(out, "tau = {tau}")?;
    wln!(out, "candidates:        {}", st.candidates)?;
    wln!(out, "candidate nodes:   {}", st.candidate_nodes)?;
    wln!(
        out,
        "peak ring buffer:  {} nodes (bound: tau = {tau})",
        st.peak_buffered
    )?;
    wln!(out, "nodes scanned:     {}", st.nodes_seen)?;
    wln!(out, "elapsed:           {dt:?}")?;
    if args.flag("compare-simple") {
        let mut queue = TreeQueue::new(&doc);
        let (_, simple) = simple_pruning(&mut queue, tau);
        wln!(
            out,
            "simple pruning (Sec. V-B) peak buffer: {} nodes ({}x the ring buffer)",
            simple.peak_buffered,
            simple
                .peak_buffered
                .checked_div(st.peak_buffered)
                .unwrap_or(0)
        )?;
    }
    out.flush()
}
