//! Minimal argument parsing (no external dependencies).

/// Parsed command line: a subcommand, positional arguments and
/// `--flag[=| ]value` options.
///
/// Options are kept in order and may repeat (e.g. several `--query`
/// flags for a batch); [`Args::get`] returns the last occurrence,
/// [`Args::get_all`] all of them.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--name value` options in command-line order; bare `--name` maps
    /// to `"true"`.
    pub options: Vec<(String, String)>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an iterator of arguments.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = Args::default();
        let mut iter = args.peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    out.options.push((k.to_string(), v.to_string()));
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let v = iter.next().expect("peeked");
                    out.options.push((name.to_string(), v));
                } else {
                    out.options.push((name.to_string(), "true".to_string()));
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// A string option (the last occurrence when repeated).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable option, in command-line order.
    /// (Callers that must preserve the interleaving of *several*
    /// repeatable options — like `query`/`query-str` — walk
    /// [`Args::options`] directly instead.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.options
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// A required string option, with an error message naming it.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// A numeric option with a default.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("option --{name}: cannot parse '{s}'")),
        }
    }

    /// A boolean flag (present = true).
    pub fn flag(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string()))
    }

    #[test]
    fn command_and_positionals() {
        let a = parse("query q.xml d.xml");
        assert_eq!(a.command.as_deref(), Some("query"));
        assert_eq!(a.positional, vec!["q.xml", "d.xml"]);
    }

    #[test]
    fn options_with_space_and_equals() {
        let a = parse("gen --nodes 1000 --dataset=dblp --verbose");
        assert_eq!(a.get("nodes"), Some("1000"));
        assert_eq!(a.get("dataset"), Some("dblp"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn numeric_parsing() {
        let a = parse("query --k 7");
        assert_eq!(a.get_num("k", 1usize).unwrap(), 7);
        assert_eq!(a.get_num("missing", 3usize).unwrap(), 3);
        let bad = parse("query --k seven");
        assert!(bad.get_num("k", 1usize).is_err());
    }

    #[test]
    fn require_reports_name() {
        let a = parse("query");
        let err = a.require("doc").unwrap_err();
        assert!(err.contains("--doc"));
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = parse("query --stats --k 2");
        assert!(a.flag("stats"));
        assert_eq!(a.get_num("k", 0usize).unwrap(), 2);
    }

    #[test]
    fn repeated_options_collect_in_order() {
        let a = parse("query --query a.xml --k 2 --query b.xml --query=c.xml");
        assert_eq!(a.get_all("query"), vec!["a.xml", "b.xml", "c.xml"]);
        // `get` takes the last occurrence; non-repeated options see one.
        assert_eq!(a.get("query"), Some("c.xml"));
        assert_eq!(a.get_all("k"), vec!["2"]);
        assert!(a.get_all("missing").is_empty());
    }
}
