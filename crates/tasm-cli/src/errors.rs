//! CLI error discipline: every failure is classified so scripts can
//! branch on the exit code.
//!
//! * **Usage** (`exit 1`) — the command line itself is wrong: missing
//!   or malformed options, unknown commands, incompatible flags. The
//!   invocation would fail identically every time.
//! * **Runtime** (`exit 2`) — the command line was fine but the work
//!   failed: unreadable files, XML/postorder parse errors, corrupt
//!   indexes, socket errors, a dirty daemon drain. Retrying or fixing
//!   the environment may help.
//! * A closed stdout pipe (`head`, `grep -q`) is **success** (`exit
//!   0`): truncating output downstream is not a failure of this
//!   process. See [`crate::output::Out`].

/// A classified CLI failure; the variant decides the process exit code.
#[derive(Debug)]
pub enum CliError {
    /// The command line is wrong (exit 1).
    Usage(String),
    /// The work failed (exit 2).
    Runtime(String),
}

/// Classifies a `Result<_, String>` as a usage error.
pub trait UsageExt<T> {
    /// Maps the error into [`CliError::Usage`].
    fn usage(self) -> Result<T, CliError>;
}

impl<T> UsageExt<T> for Result<T, String> {
    fn usage(self) -> Result<T, CliError> {
        self.map_err(CliError::Usage)
    }
}

/// Classifies a `Result<_, String>` as a runtime error.
pub trait RuntimeExt<T> {
    /// Maps the error into [`CliError::Runtime`].
    fn runtime(self) -> Result<T, CliError>;
}

impl<T> RuntimeExt<T> for Result<T, String> {
    fn runtime(self) -> Result<T, CliError> {
        self.map_err(CliError::Runtime)
    }
}
