//! Stdout with pipe-aware failure semantics.
//!
//! CLI output is routinely piped into `head`, `grep -m1`, or a pager
//! that exits early. The default `println!` panics on the resulting
//! `EPIPE`; treating it as an error would make `tasm gen | head` exit
//! nonzero. [`Out`] makes the policy explicit: a broken pipe silences
//! all further output and the command exits 0; every other write error
//! is a [`CliError::Runtime`] (exit 2).

use std::fmt;
use std::io::{ErrorKind, Write};

use crate::errors::CliError;

/// A write sink that swallows `EPIPE` (output truncated downstream —
/// success) and classifies real write failures as runtime errors.
pub struct Out<W: Write> {
    inner: W,
    closed: bool,
}

/// Writes one line to an [`Out`], `println!`-style:
/// `wln!(out, "{} nodes", n)?`.
macro_rules! wln {
    ($out:expr) => {
        $out.line(format_args!(""))
    };
    ($out:expr, $($arg:tt)*) => {
        $out.line(format_args!($($arg)*))
    };
}

impl<W: Write> Out<W> {
    /// Wraps a writer (typically a locked stdout).
    pub fn new(inner: W) -> Self {
        Out {
            inner,
            closed: false,
        }
    }

    fn check(&mut self, result: std::io::Result<()>) -> Result<(), CliError> {
        match result {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == ErrorKind::BrokenPipe => {
                // The reader went away; everything further is no-op.
                self.closed = true;
                Ok(())
            }
            Err(e) => Err(CliError::Runtime(format!("stdout: {e}"))),
        }
    }

    /// Writes `args` followed by a newline (use via [`wln!`]).
    pub fn line(&mut self, args: fmt::Arguments<'_>) -> Result<(), CliError> {
        if self.closed {
            return Ok(());
        }
        let r = self
            .inner
            .write_fmt(args)
            .and_then(|()| self.inner.write_all(b"\n"));
        self.check(r)
    }

    /// Writes raw bytes (bulk output like generated XML).
    pub fn raw(&mut self, bytes: &[u8]) -> Result<(), CliError> {
        if self.closed {
            return Ok(());
        }
        let r = self.inner.write_all(bytes);
        self.check(r)
    }

    /// Flushes buffered output.
    pub fn flush(&mut self) -> Result<(), CliError> {
        if self.closed {
            return Ok(());
        }
        let r = self.inner.flush();
        self.check(r)
    }
}

/// An [`Out`] over this process's stdout.
pub fn stdout() -> Out<std::io::Stdout> {
    Out::new(std::io::stdout())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FailAfter {
        n: usize,
        kind: ErrorKind,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.n == 0 {
                return Err(std::io::Error::new(self.kind, "boom"));
            }
            self.n -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn broken_pipe_is_swallowed_and_sticky() {
        let mut out = Out::new(FailAfter {
            n: 0,
            kind: ErrorKind::BrokenPipe,
        });
        assert!(wln!(out, "first").is_ok());
        // Later writes are silent no-ops, not retries.
        assert!(wln!(out, "second").is_ok());
        assert!(out.raw(b"third").is_ok());
        assert!(out.flush().is_ok());
    }

    #[test]
    fn real_write_errors_are_runtime_errors() {
        let mut out = Out::new(FailAfter {
            n: 0,
            kind: ErrorKind::Other,
        });
        match wln!(out, "x") {
            Err(CliError::Runtime(msg)) => assert!(msg.contains("stdout")),
            other => panic!("{other:?}"),
        }
    }
}
