//! The postorder queue (Def. 2): the streaming interface to a document.
//!
//! A postorder queue is the sequence of `(label, size)` pairs of a tree's
//! nodes in postorder; `size` is the size of the subtree rooted at the node.
//! It uniquely defines the tree, and the only permitted operation is
//! `dequeue`. TASM-postorder consumes a document exclusively through this
//! interface, which is what makes it a *single-pass* algorithm: any storage
//! layer that can produce an efficient postorder traversal (an XML parser, an
//! XML stream, an interval-encoded relational store) can implement it.

use crate::label::LabelId;
use crate::tree::Tree;

/// One element of a postorder queue: the node's label and the size of the
/// subtree rooted at it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PostorderEntry {
    /// Interned node label.
    pub label: LabelId,
    /// Size of the subtree rooted at this node (>= 1).
    pub size: u32,
}

impl PostorderEntry {
    /// Convenience constructor.
    #[inline]
    pub fn new(label: LabelId, size: u32) -> Self {
        PostorderEntry { label, size }
    }
}

/// A stream of tree nodes in postorder — the paper's *postorder queue*.
///
/// Implementations must yield a valid postorder encoding of a single tree
/// (every prefix of the stream is a valid forest; the final entry is the
/// root covering all nodes).
pub trait PostorderQueue {
    /// Removes and returns the next entry, or `None` when exhausted.
    fn dequeue(&mut self) -> Option<PostorderEntry>;

    /// A hint of the total number of nodes, if known (used only to size
    /// buffers; correctness never depends on it).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// After [`dequeue`](Self::dequeue) has returned `None`: a description
    /// of why the stream ended **abnormally**, or `None` for a clean end.
    ///
    /// `dequeue` cannot distinguish "document complete" from "source died
    /// mid-document" (a truncated file, an I/O error, malformed XML), so
    /// sources that can fail record the condition and report it here.
    /// Scan drivers check this once the scan is over and refuse to return
    /// a ranking computed from a partial document. The default — for
    /// in-memory queues that cannot fail — is `None`.
    fn integrity_error(&self) -> Option<String> {
        None
    }
}

/// A postorder queue over an in-memory [`Tree`].
#[derive(Debug, Clone)]
pub struct TreeQueue<'a> {
    tree: &'a Tree,
    next: usize,
}

impl<'a> TreeQueue<'a> {
    /// Creates a queue that yields all nodes of `tree` in postorder.
    pub fn new(tree: &'a Tree) -> Self {
        TreeQueue { tree, next: 0 }
    }
}

impl PostorderQueue for TreeQueue<'_> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        if self.next >= self.tree.len() {
            return None;
        }
        let e = PostorderEntry {
            label: self.tree.labels()[self.next],
            size: self.tree.sizes()[self.next],
        };
        self.next += 1;
        Some(e)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.tree.len() - self.next)
    }
}

/// A postorder queue over an owned vector of entries (used by generators
/// and tests).
#[derive(Debug, Clone)]
pub struct VecQueue {
    entries: std::vec::IntoIter<PostorderEntry>,
}

impl VecQueue {
    /// Wraps a vector of postorder entries.
    pub fn new(entries: Vec<PostorderEntry>) -> Self {
        VecQueue {
            entries: entries.into_iter(),
        }
    }

    /// Builds the queue for `tree` (copies the arrays).
    pub fn from_tree(tree: &Tree) -> Self {
        VecQueue::new(
            tree.postorder()
                .map(|(label, size)| PostorderEntry { label, size })
                .collect(),
        )
    }
}

impl PostorderQueue for VecQueue {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        self.entries.next()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.entries.len())
    }
}

/// Adapts any iterator of postorder entries into a postorder queue.
#[derive(Debug, Clone)]
pub struct IterQueue<I>(pub I);

impl<I: Iterator<Item = PostorderEntry>> PostorderQueue for IterQueue<I> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        self.0.next()
    }

    fn len_hint(&self) -> Option<usize> {
        match self.0.size_hint() {
            (lo, Some(hi)) if lo == hi => Some(lo),
            _ => None,
        }
    }
}

/// Collects a whole postorder queue back into a [`Tree`] (validating).
///
/// Mostly useful in tests: production code streams instead.
pub fn collect_tree(queue: &mut dyn PostorderQueue) -> Result<Tree, crate::error::TreeError> {
    let mut entries = Vec::new();
    while let Some(e) = queue.dequeue() {
        entries.push((e.label, e.size));
    }
    Tree::from_postorder(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelDict;

    fn example_d_dict() -> (Tree, LabelDict) {
        // The example document D of Fig. 4a (22 nodes).
        let mut dict = LabelDict::new();
        let t = crate::bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            &mut dict,
        )
        .unwrap();
        (t, dict)
    }

    #[test]
    fn example_d_postorder_queue_matches_fig_4b() {
        let (t, dict) = example_d_dict();
        assert_eq!(t.len(), 22);
        let mut q = TreeQueue::new(&t);
        let mut seq = Vec::new();
        while let Some(e) = q.dequeue() {
            seq.push((dict.resolve(e.label).to_string(), e.size));
        }
        let expected: Vec<(&str, u32)> = vec![
            ("John", 1),
            ("auth", 2),
            ("X1", 1),
            ("title", 2),
            ("article", 5),
            ("VLDB", 1),
            ("conf", 2),
            ("Peter", 1),
            ("auth", 2),
            ("X3", 1),
            ("title", 2),
            ("article", 5),
            ("Mike", 1),
            ("auth", 2),
            ("X4", 1),
            ("title", 2),
            ("article", 5),
            ("proceedings", 13),
            ("X2", 1),
            ("title", 2),
            ("book", 3),
            ("dblp", 22),
        ];
        let got: Vec<(&str, u32)> = seq.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn tree_queue_len_hint_counts_down() {
        let (t, _) = example_d_dict();
        let mut q = TreeQueue::new(&t);
        assert_eq!(q.len_hint(), Some(22));
        q.dequeue();
        assert_eq!(q.len_hint(), Some(21));
    }

    #[test]
    fn vec_queue_round_trips() {
        let (t, _) = example_d_dict();
        let mut q = VecQueue::from_tree(&t);
        let t2 = collect_tree(&mut q).unwrap();
        assert_eq!(t, t2);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn iterator_is_a_queue() {
        let (t, _) = example_d_dict();
        let entries: Vec<PostorderEntry> = t
            .postorder()
            .map(|(l, s)| PostorderEntry::new(l, s))
            .collect();
        let mut iter_queue = IterQueue(entries.into_iter());
        let t2 = collect_tree(&mut iter_queue).unwrap();
        assert_eq!(t, t2);
    }
}
