//! Additional traversals over postorder arenas: preorder (document
//! order), ancestor walks, and depth-first visits with enter/leave hooks.
//!
//! The arena stores nodes in postorder; preorder and ancestor traversals
//! are derived from the size array without auxiliary structures, matching
//! the paper's interval-encoding portability argument.

use crate::node::NodeId;
use crate::tree::Tree;

/// Iterates the node ids of `tree` in **preorder** (document order):
/// every node before its descendants, siblings left to right.
///
/// Derived directly from the postorder arena: the preorder successor of a
/// non-leaf is its leftmost child's... more simply, preorder visits nodes
/// in decreasing order of `(lml, -post)`; this iterator runs in O(n) with
/// an explicit stack of pending sibling groups.
pub fn preorder(tree: &Tree) -> Preorder<'_> {
    Preorder {
        tree,
        stack: vec![tree.root()],
    }
}

/// Iterator for [`preorder`].
#[derive(Debug)]
pub struct Preorder<'a> {
    tree: &'a Tree,
    /// Pending nodes; the top is visited next, its children are pushed
    /// right-to-left so the leftmost pops first.
    stack: Vec<NodeId>,
}

impl Iterator for Preorder<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        for child in self.tree.children_rl(node) {
            self.stack.push(child);
        }
        Some(node)
    }
}

/// Iterates the ancestors of `node`, nearest first (excludes `node`,
/// ends at the root). O(height) total using binary-search-free upward
/// scanning: the parent of `i` is the smallest `j > i` with `lml(j) <= lml(i)`.
pub fn ancestors(tree: &Tree, node: NodeId) -> Ancestors<'_> {
    Ancestors {
        tree,
        current: node,
    }
}

/// Iterator for [`ancestors`].
#[derive(Debug)]
pub struct Ancestors<'a> {
    tree: &'a Tree,
    current: NodeId,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.current == self.tree.root() {
            return None;
        }
        // Scan upward: the parent is the first node after `current` whose
        // interval covers it.
        let lml = self.tree.lml(self.current);
        let mut candidate = NodeId::new(self.current.post() + 1);
        loop {
            if self.tree.lml(candidate) <= lml {
                self.current = candidate;
                return Some(candidate);
            }
            candidate = NodeId::new(candidate.post() + 1);
        }
    }
}

/// The lowest common ancestor of two nodes. O(height).
pub fn lca(tree: &Tree, a: NodeId, b: NodeId) -> NodeId {
    if a == b {
        return a;
    }
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    if tree.lml(hi) <= lo {
        // hi is an ancestor of lo (or hi == lo handled above).
        return hi;
    }
    for anc in ancestors(tree, hi) {
        if tree.lml(anc) <= lo && lo <= anc {
            return anc;
        }
    }
    tree.root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bracket;
    use crate::label::LabelDict;

    fn example_h() -> (Tree, LabelDict) {
        let mut d = LabelDict::new();
        let t = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut d).unwrap();
        (t, d)
    }

    #[test]
    fn preorder_of_example_h() {
        let (h, d) = example_h();
        let order: Vec<String> = preorder(&h)
            .map(|id| d.resolve(h.label(id)).to_string())
            .collect();
        assert_eq!(order, vec!["x", "a", "b", "d", "a", "b", "c"]);
        let ids: Vec<u32> = preorder(&h).map(|id| id.post()).collect();
        assert_eq!(ids, vec![7, 3, 1, 2, 6, 4, 5]);
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{r{a{x}{y{z}}}{b}{c{u}{v}}}", &mut d).unwrap();
        let mut seen = vec![false; t.len()];
        for id in preorder(&t) {
            assert!(!seen[id.index()]);
            seen[id.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn preorder_parent_before_child() {
        let (h, _) = example_h();
        let pos: Vec<usize> = {
            let mut pos = vec![0; h.len()];
            for (i, id) in preorder(&h).enumerate() {
                pos[id.index()] = i;
            }
            pos
        };
        let parents = h.parents();
        for id in h.nodes() {
            if let Some(p) = parents[id.index()] {
                assert!(pos[p.index()] < pos[id.index()], "{p} before {id}");
            }
        }
    }

    #[test]
    fn ancestors_of_leaf() {
        let (h, _) = example_h();
        let anc: Vec<u32> = ancestors(&h, NodeId::new(1)).map(|a| a.post()).collect();
        assert_eq!(anc, vec![3, 7]);
        let anc: Vec<u32> = ancestors(&h, NodeId::new(5)).map(|a| a.post()).collect();
        assert_eq!(anc, vec![6, 7]);
    }

    #[test]
    fn ancestors_of_root_is_empty() {
        let (h, _) = example_h();
        assert_eq!(ancestors(&h, h.root()).count(), 0);
    }

    #[test]
    fn ancestors_match_parents_chain() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{r{a{x}{y{z}}}{b}{c{u}{v}}}", &mut d).unwrap();
        let parents = t.parents();
        for id in t.nodes() {
            let mut expected = Vec::new();
            let mut p = parents[id.index()];
            while let Some(anc) = p {
                expected.push(anc);
                p = parents[anc.index()];
            }
            let got: Vec<NodeId> = ancestors(&t, id).collect();
            assert_eq!(got, expected, "ancestors of {id}");
        }
    }

    #[test]
    fn lca_cases() {
        let (h, _) = example_h();
        // Siblings under a: lca(b1, d2) = a3.
        assert_eq!(lca(&h, NodeId::new(1), NodeId::new(2)), NodeId::new(3));
        // Across the two a-subtrees: root.
        assert_eq!(lca(&h, NodeId::new(1), NodeId::new(4)), NodeId::new(7));
        // Ancestor pair: the ancestor itself.
        assert_eq!(lca(&h, NodeId::new(1), NodeId::new(3)), NodeId::new(3));
        assert_eq!(lca(&h, NodeId::new(3), NodeId::new(1)), NodeId::new(3));
        // Identical nodes.
        assert_eq!(lca(&h, NodeId::new(5), NodeId::new(5)), NodeId::new(5));
        // With the root.
        assert_eq!(lca(&h, NodeId::new(7), NodeId::new(2)), NodeId::new(7));
    }

    #[test]
    fn lca_brute_force_agreement() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{r{a{x}{y{z}}}{b}{c{u}{v}}}", &mut d).unwrap();
        let parents = t.parents();
        let chain = |mut n: NodeId| {
            let mut c = vec![n];
            while let Some(p) = parents[n.index()] {
                c.push(p);
                n = p;
            }
            c
        };
        for a in t.nodes() {
            for b in t.nodes() {
                let ca = chain(a);
                let cb = chain(b);
                let expected = *ca.iter().find(|x| cb.contains(x)).expect("root is shared");
                assert_eq!(lca(&t, a, b), expected, "lca({a},{b})");
            }
        }
    }
}
