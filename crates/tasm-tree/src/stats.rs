//! Structural statistics of trees: shape summaries used by the experiment
//! harness and for sanity-checking generated datasets against the shapes
//! reported in the paper (XMark height 13, DBLP height 6, PSD height 7, …).

use crate::tree::Tree;

/// Shape summary of a tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Height (edges on the longest root-to-leaf path).
    pub height: u32,
    /// Maximum fanout over all nodes.
    pub max_fanout: usize,
    /// Mean fanout over internal nodes (0 if the tree is a single leaf).
    pub mean_internal_fanout: f64,
    /// Number of distinct labels used.
    pub distinct_labels: usize,
}

impl TreeStats {
    /// Computes the summary in O(n).
    pub fn of(tree: &Tree) -> Self {
        let mut leaves = 0usize;
        let mut max_fanout = 0usize;
        let mut internal = 0usize;
        let mut child_edges = 0usize;
        for id in tree.nodes() {
            if tree.is_leaf(id) {
                leaves += 1;
            } else {
                internal += 1;
                let f = tree.fanout(id);
                child_edges += f;
                max_fanout = max_fanout.max(f);
            }
        }
        let mut labels: Vec<u32> = tree.labels().iter().map(|l| l.0).collect();
        labels.sort_unstable();
        labels.dedup();
        TreeStats {
            nodes: tree.len(),
            leaves,
            height: tree.height(),
            max_fanout,
            mean_internal_fanout: if internal == 0 {
                0.0
            } else {
                child_edges as f64 / internal as f64
            },
            distinct_labels: labels.len(),
        }
    }
}

/// Histogram of subtree sizes: `histogram[s]` = number of nodes whose
/// subtree has exactly `s` nodes (index 0 unused).
///
/// Used to validate the "data-centric XML" premise of Sec. V-B: in DBLP-like
/// documents almost all subtrees are tiny while a few (the root path) are
/// huge.
pub fn subtree_size_histogram(tree: &Tree) -> Vec<u64> {
    let mut hist = vec![0u64; tree.len() + 1];
    for id in tree.nodes() {
        hist[tree.size(id) as usize] += 1;
    }
    hist
}

/// Fraction of subtrees with size <= `threshold` (excluding the root).
///
/// The paper observes that over 99% of the root's subtrees in DBLP are below
/// τ = 50; generators are checked against this.
pub fn fraction_below(tree: &Tree, threshold: u32) -> f64 {
    let n = tree.len();
    if n <= 1 {
        return 1.0;
    }
    let below = tree
        .nodes()
        .filter(|&id| id != tree.root() && tree.size(id) <= threshold)
        .count();
    below as f64 / (n - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelDict;

    fn parse(s: &str) -> Tree {
        let mut d = LabelDict::new();
        crate::bracket::parse(s, &mut d).unwrap()
    }

    #[test]
    fn stats_of_example_h() {
        let t = parse("{x{a{b}{d}}{a{b}{c}}}");
        let s = TreeStats::of(&t);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.height, 2);
        assert_eq!(s.max_fanout, 2);
        assert!((s.mean_internal_fanout - 2.0).abs() < 1e-12);
        assert_eq!(s.distinct_labels, 5); // x, a, b, c, d
    }

    #[test]
    fn histogram_counts_every_node() {
        let t = parse("{x{a{b}{d}}{a{b}{c}}}");
        let h = subtree_size_histogram(&t);
        assert_eq!(h[1], 4); // four leaves
        assert_eq!(h[3], 2); // two "a" subtrees
        assert_eq!(h[7], 1); // root
        assert_eq!(h.iter().sum::<u64>(), 7);
    }

    #[test]
    fn fraction_below_small_threshold() {
        let t = parse("{x{a{b}{d}}{a{b}{c}}}");
        // Non-root nodes: 4 leaves (size 1) and 2 size-3 subtrees.
        assert!((fraction_below(&t, 1) - 4.0 / 6.0).abs() < 1e-12);
        assert!((fraction_below(&t, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_node_stats() {
        let t = parse("{a}");
        let s = TreeStats::of(&t);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.height, 0);
        assert_eq!(s.mean_internal_fanout, 0.0);
        assert_eq!(fraction_below(&t, 1), 1.0);
    }
}
