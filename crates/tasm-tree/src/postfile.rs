//! A binary on-disk format for postorder queues — the "persistent XML
//! store" angle of the paper.
//!
//! Sec. VIII argues the postorder queue "can be implemented by any XML
//! processing or storage system that allows an efficient postorder
//! traversal", citing interval-encoded stores [24]. This module is such a
//! store: parse a document once, persist it as a compact postorder file,
//! and afterwards stream TASM queries straight from disk without
//! re-parsing XML (typically several times smaller and faster to scan).
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic   "TASMPQ1\n"                      8 bytes
//! n_nodes u64
//! n_labels u64
//! labels  n_labels × (u32 len, bytes)       the dictionary, id order
//! entries n_nodes × (u32 label, u32 size)   postorder
//! ```
//!
//! The whole dictionary is stored in the header so readers can stream the
//! fixed-width entry section with O(1) state per node.
//!
//! # Format version 2 (`.pqi`, indexed)
//!
//! Version 2 (magic `"TASMPQ2\n"`) keeps the header and entry sections
//! byte-identical to version 1 — so this streaming reader handles both
//! transparently — and appends inverted-index sections after the entries
//! (per-label postings of postorder positions). The label dictionary of a
//! v2 file is written in **descending frequency** order. The index
//! sections are written and consumed by the `tasm-index` crate; this
//! reader simply stops after `n_nodes` entries and never touches them.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::label::{LabelDict, LabelId};
use crate::postorder_queue::{PostorderEntry, PostorderQueue};
use crate::tree::Tree;

/// Magic of a version-1 (plain postorder stream) file.
pub const MAGIC_V1: &[u8; 8] = b"TASMPQ1\n";
/// Magic of a version-2 (indexed, `.pqi`) file.
pub const MAGIC_V2: &[u8; 8] = b"TASMPQ2\n";

/// Errors for the postorder file format.
#[derive(Debug)]
pub enum PostFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic or malformed header/dictionary.
    Format(String),
    /// The file is structurally readable but fails an integrity check
    /// (checksum mismatch, torn write): its content cannot be trusted.
    Corrupt(String),
}

impl std::fmt::Display for PostFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostFileError::Io(e) => write!(f, "postorder file I/O error: {e}"),
            PostFileError::Format(m) => write!(f, "postorder file format error: {m}"),
            PostFileError::Corrupt(m) => write!(f, "postorder file corrupt: {m}"),
        }
    }
}

impl std::error::Error for PostFileError {}

impl From<io::Error> for PostFileError {
    fn from(e: io::Error) -> Self {
        PostFileError::Io(e)
    }
}

/// Writes `queue` (with its dictionary) to `out` in the postorder file
/// format. `n_nodes` must match the number of entries the queue yields.
pub fn write_postfile<W: Write>(
    mut out: W,
    dict: &LabelDict,
    queue: &mut dyn PostorderQueue,
    n_nodes: u64,
) -> Result<(), PostFileError> {
    out.write_all(MAGIC_V1)?;
    out.write_all(&n_nodes.to_le_bytes())?;
    out.write_all(&(dict.len() as u64).to_le_bytes())?;
    for (_, name) in dict.iter() {
        let bytes = name.as_bytes();
        out.write_all(&(bytes.len() as u32).to_le_bytes())?;
        out.write_all(bytes)?;
    }
    let mut written = 0u64;
    while let Some(e) = queue.dequeue() {
        out.write_all(&e.label.0.to_le_bytes())?;
        out.write_all(&e.size.to_le_bytes())?;
        written += 1;
    }
    if written != n_nodes {
        return Err(PostFileError::Format(format!(
            "queue yielded {written} entries, header promised {n_nodes}"
        )));
    }
    out.flush()?;
    Ok(())
}

/// Convenience: persists an in-memory tree to `path` **atomically**
/// (see [`atomic_write`]): readers never observe a torn `.pq` file.
pub fn save_tree(
    path: impl AsRef<Path>,
    tree: &Tree,
    dict: &LabelDict,
) -> Result<(), PostFileError> {
    atomic_write(path, |out| {
        let mut queue = crate::postorder_queue::TreeQueue::new(tree);
        write_postfile(out, dict, &mut queue, tree.len() as u64)
    })
}

/// Crash-safe file publication: runs `write` against a temp file in the
/// target's directory, fsyncs it, then atomically renames it over
/// `path`. A crash at any point leaves either the old file or the new
/// one — never a torn mix — and a failed write cleans up the temp file
/// instead of leaving it behind.
pub fn atomic_write(
    path: impl AsRef<Path>,
    write: impl FnOnce(&mut BufWriter<File>) -> Result<(), PostFileError>,
) -> Result<(), PostFileError> {
    let path = path.as_ref();
    // The temp file must live on the same filesystem as the target for
    // the rename to be atomic, so it goes next to it.
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut out = BufWriter::new(File::create(&tmp)?);
        write(&mut out)?;
        out.flush()?;
        // Data must be durable BEFORE the rename publishes the name: a
        // rename surviving a crash that the data didn't would swap a
        // good file for garbage.
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself (directory entry). Best-effort:
        // some filesystems refuse directory fsync.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A streaming reader over a postorder file (version 1 or 2): implements
/// [`PostorderQueue`], holding O(1) state beyond the dictionary.
#[derive(Debug)]
pub struct PostFileReader<R: Read> {
    input: R,
    dict: LabelDict,
    remaining: u64,
    total: u64,
    /// Format version from the magic (1 = plain `.pq`, 2 = indexed `.pqi`).
    version: u8,
    /// Set when the entry section ended before `total` nodes were read:
    /// the file is truncated and any ranking over it would be partial.
    truncated: bool,
}

impl PostFileReader<BufReader<File>> {
    /// Opens a postorder file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PostFileError> {
        let file = File::open(path)?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read> PostFileReader<R> {
    /// Reads the header and dictionary from `input`.
    pub fn new(mut input: R) -> Result<Self, PostFileError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        let version = if &magic == MAGIC_V1 {
            1
        } else if &magic == MAGIC_V2 {
            2
        } else {
            return Err(PostFileError::Format(
                "bad magic; not a TASMPQ1/TASMPQ2 file".into(),
            ));
        };
        let total = read_u64(&mut input)?;
        let n_labels = read_u64(&mut input)?;
        let mut dict = LabelDict::with_capacity(n_labels as usize);
        let mut buf = Vec::new();
        for i in 0..n_labels {
            let len = read_u32(&mut input)? as usize;
            if len > 1 << 24 {
                return Err(PostFileError::Format(format!("label {i} is {len} bytes")));
            }
            buf.resize(len, 0);
            input.read_exact(&mut buf)?;
            let name = std::str::from_utf8(&buf)
                .map_err(|_| PostFileError::Format(format!("label {i} is not UTF-8")))?;
            let id = dict.intern(name);
            if id.index() as u64 != i {
                return Err(PostFileError::Format(format!("duplicate label {name}")));
            }
        }
        Ok(PostFileReader {
            input,
            dict,
            remaining: total,
            total,
            version,
            truncated: false,
        })
    }

    /// The dictionary stored in the file.
    pub fn dict(&self) -> &LabelDict {
        &self.dict
    }

    /// The format version from the magic: 1 (`.pq`) or 2 (`.pqi`).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Total number of nodes in the file.
    pub fn total_nodes(&self) -> u64 {
        self.total
    }

    /// Entries the header promised but that have not been dequeued yet.
    ///
    /// [`PostorderQueue::dequeue`] ends the stream early (returns `None`)
    /// on a short read, so after a scan a non-zero value means the file
    /// was **truncated** — callers that must not silently accept partial
    /// documents (e.g. the CLI) check this. The scan drivers in
    /// `tasm-core` detect the same condition through
    /// [`PostorderQueue::integrity_error`].
    pub fn remaining_nodes(&self) -> u64 {
        self.remaining
    }

    /// Consumes the reader, returning the dictionary (e.g. to resolve
    /// match labels after the scan).
    pub fn into_dict(self) -> LabelDict {
        self.dict
    }

    /// Consumes the reader, returning the underlying input positioned
    /// after the last byte read, plus the dictionary — so an index
    /// loader can continue with the sections that follow the entry
    /// stream of a version-2 file.
    pub fn into_inner(self) -> (R, LabelDict) {
        (self.input, self.dict)
    }
}

impl<R: Read> PostorderQueue for PostFileReader<R> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        if self.remaining == 0 {
            return None;
        }
        let entry = read_u32(&mut self.input)
            .and_then(|label| read_u32(&mut self.input).map(|size| (label, size)));
        let (label, size) = match entry {
            Ok(e) => e,
            Err(_) => {
                // The header promised more nodes than the byte stream
                // holds: remember the shortfall so drivers can refuse
                // the partial document instead of ranking it.
                self.truncated = true;
                return None;
            }
        };
        self.remaining -= 1;
        Some(PostorderEntry {
            label: LabelId(label),
            size,
        })
    }

    fn len_hint(&self) -> Option<usize> {
        usize::try_from(self.remaining).ok()
    }

    fn integrity_error(&self) -> Option<String> {
        self.truncated.then(|| {
            format!(
                "postorder file truncated: {} of {} nodes missing",
                self.remaining, self.total
            )
        })
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bracket;
    use crate::postorder_queue::collect_tree;

    fn sample() -> (Tree, LabelDict) {
        let mut dict = LabelDict::new();
        let t = bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}",
            &mut dict,
        )
        .unwrap();
        (t, dict)
    }

    #[test]
    fn round_trip_in_memory() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();

        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.total_nodes(), t.len() as u64);
        assert_eq!(reader.dict().len(), dict.len());
        assert_eq!(reader.dict().resolve(LabelId(0)), dict.resolve(LabelId(0)));
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn round_trip_via_file() {
        let (t, dict) = sample();
        let path = std::env::temp_dir().join(format!("tasm_pf_{}.pq", std::process::id()));
        save_tree(&path, &t, &dict).unwrap();
        let mut reader = PostFileReader::open(&path).unwrap();
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn len_hint_counts_down() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.len_hint(), Some(t.len()));
        reader.dequeue();
        assert_eq!(reader.len_hint(), Some(t.len() - 1));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = PostFileReader::new(&b"NOTAPQFILE______"[..]).unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
    }

    #[test]
    fn rejects_truncated_header() {
        let err = PostFileReader::new(&b"TASMPQ1\n\x01"[..]).unwrap_err();
        assert!(matches!(err, PostFileError::Io(_)));
    }

    #[test]
    fn truncated_entries_end_the_stream() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        bytes.truncate(bytes.len() - 4); // cut the last entry in half
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        let mut n = 0;
        while reader.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, t.len() - 1);
        // The shortfall is detectable after the scan.
        assert_eq!(reader.remaining_nodes(), 1);
        let msg = reader.integrity_error().expect("truncation is reported");
        assert!(msg.contains("truncated"), "{msg}");
    }

    #[test]
    fn complete_stream_reports_no_integrity_error() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.version(), 1);
        while reader.dequeue().is_some() {}
        assert_eq!(reader.integrity_error(), None);
    }

    #[test]
    fn v2_magic_streams_like_v1() {
        // A v2 file is a v1 file with a different magic plus trailing
        // index sections; the streaming reader must accept it and stop
        // after the entry section.
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        bytes[..8].copy_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&[0xAB; 16]); // fake trailing index data
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.version(), 2);
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
        assert_eq!(reader.integrity_error(), None);
    }

    #[test]
    fn atomic_write_leaves_no_temp_file_on_success_or_failure() {
        let (t, dict) = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tasm_aw_{}.pq", std::process::id()));
        save_tree(&path, &t, &dict).unwrap();
        assert!(path.exists());
        // A failing writer must clean up and leave the published file
        // exactly as it was.
        let before = std::fs::read(&path).unwrap();
        let err = atomic_write(&path, |_| {
            Err(PostFileError::Format("writer exploded".into()))
        })
        .unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| {
                n.starts_with(&format!("tasm_aw_{}", std::process::id())) && n.contains(".tmp.")
            })
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_tree_overwrites_atomically() {
        let (t, dict) = sample();
        let path = std::env::temp_dir().join(format!("tasm_ow_{}.pq", std::process::id()));
        save_tree(&path, &t, &dict).unwrap();
        // Overwrite with a different tree; the new content replaces the
        // old wholesale.
        let mut dict2 = LabelDict::new();
        let t2 = bracket::parse("{a{b}}", &mut dict2).unwrap();
        save_tree(&path, &t2, &dict2).unwrap();
        let mut reader = PostFileReader::open(&path).unwrap();
        let back = collect_tree(&mut reader).unwrap();
        assert_eq!(back, t2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_validates_count() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        let err = write_postfile(&mut bytes, &dict, &mut q, 99).unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
    }
}
