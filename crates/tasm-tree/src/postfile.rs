//! A binary on-disk format for postorder queues — the "persistent XML
//! store" angle of the paper.
//!
//! Sec. VIII argues the postorder queue "can be implemented by any XML
//! processing or storage system that allows an efficient postorder
//! traversal", citing interval-encoded stores [24]. This module is such a
//! store: parse a document once, persist it as a compact postorder file,
//! and afterwards stream TASM queries straight from disk without
//! re-parsing XML (typically several times smaller and faster to scan).
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic   "TASMPQ1\n"                      8 bytes
//! n_nodes u64
//! n_labels u64
//! labels  n_labels × (u32 len, bytes)       the dictionary, id order
//! entries n_nodes × (u32 label, u32 size)   postorder
//! ```
//!
//! The whole dictionary is stored in the header so readers can stream the
//! fixed-width entry section with O(1) state per node.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::label::{LabelDict, LabelId};
use crate::postorder_queue::{PostorderEntry, PostorderQueue};
use crate::tree::Tree;

const MAGIC: &[u8; 8] = b"TASMPQ1\n";

/// Errors for the postorder file format.
#[derive(Debug)]
pub enum PostFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic or malformed header/dictionary.
    Format(String),
}

impl std::fmt::Display for PostFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostFileError::Io(e) => write!(f, "postorder file I/O error: {e}"),
            PostFileError::Format(m) => write!(f, "postorder file format error: {m}"),
        }
    }
}

impl std::error::Error for PostFileError {}

impl From<io::Error> for PostFileError {
    fn from(e: io::Error) -> Self {
        PostFileError::Io(e)
    }
}

/// Writes `queue` (with its dictionary) to `out` in the postorder file
/// format. `n_nodes` must match the number of entries the queue yields.
pub fn write_postfile<W: Write>(
    mut out: W,
    dict: &LabelDict,
    queue: &mut dyn PostorderQueue,
    n_nodes: u64,
) -> Result<(), PostFileError> {
    out.write_all(MAGIC)?;
    out.write_all(&n_nodes.to_le_bytes())?;
    out.write_all(&(dict.len() as u64).to_le_bytes())?;
    for (_, name) in dict.iter() {
        let bytes = name.as_bytes();
        out.write_all(&(bytes.len() as u32).to_le_bytes())?;
        out.write_all(bytes)?;
    }
    let mut written = 0u64;
    while let Some(e) = queue.dequeue() {
        out.write_all(&e.label.0.to_le_bytes())?;
        out.write_all(&e.size.to_le_bytes())?;
        written += 1;
    }
    if written != n_nodes {
        return Err(PostFileError::Format(format!(
            "queue yielded {written} entries, header promised {n_nodes}"
        )));
    }
    out.flush()?;
    Ok(())
}

/// Convenience: persists an in-memory tree to `path`.
pub fn save_tree(
    path: impl AsRef<Path>,
    tree: &Tree,
    dict: &LabelDict,
) -> Result<(), PostFileError> {
    let file = File::create(path)?;
    let mut queue = crate::postorder_queue::TreeQueue::new(tree);
    write_postfile(BufWriter::new(file), dict, &mut queue, tree.len() as u64)
}

/// A streaming reader over a postorder file: implements
/// [`PostorderQueue`], holding O(1) state beyond the dictionary.
#[derive(Debug)]
pub struct PostFileReader<R: Read> {
    input: R,
    dict: LabelDict,
    remaining: u64,
    total: u64,
}

impl PostFileReader<BufReader<File>> {
    /// Opens a postorder file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PostFileError> {
        let file = File::open(path)?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read> PostFileReader<R> {
    /// Reads the header and dictionary from `input`.
    pub fn new(mut input: R) -> Result<Self, PostFileError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PostFileError::Format(
                "bad magic; not a TASMPQ1 file".into(),
            ));
        }
        let total = read_u64(&mut input)?;
        let n_labels = read_u64(&mut input)?;
        let mut dict = LabelDict::with_capacity(n_labels as usize);
        let mut buf = Vec::new();
        for i in 0..n_labels {
            let len = read_u32(&mut input)? as usize;
            if len > 1 << 24 {
                return Err(PostFileError::Format(format!("label {i} is {len} bytes")));
            }
            buf.resize(len, 0);
            input.read_exact(&mut buf)?;
            let name = std::str::from_utf8(&buf)
                .map_err(|_| PostFileError::Format(format!("label {i} is not UTF-8")))?;
            let id = dict.intern(name);
            if id.index() as u64 != i {
                return Err(PostFileError::Format(format!("duplicate label {name}")));
            }
        }
        Ok(PostFileReader {
            input,
            dict,
            remaining: total,
            total,
        })
    }

    /// The dictionary stored in the file.
    pub fn dict(&self) -> &LabelDict {
        &self.dict
    }

    /// Total number of nodes in the file.
    pub fn total_nodes(&self) -> u64 {
        self.total
    }

    /// Entries the header promised but that have not been dequeued yet.
    ///
    /// [`PostorderQueue::dequeue`] ends the stream early (returns `None`)
    /// on a short read, so after a scan a non-zero value means the file
    /// was **truncated** — callers that must not silently accept partial
    /// documents (e.g. the CLI) check this.
    pub fn remaining_nodes(&self) -> u64 {
        self.remaining
    }

    /// Consumes the reader, returning the dictionary (e.g. to resolve
    /// match labels after the scan).
    pub fn into_dict(self) -> LabelDict {
        self.dict
    }
}

impl<R: Read> PostorderQueue for PostFileReader<R> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        if self.remaining == 0 {
            return None;
        }
        let label = read_u32(&mut self.input).ok()?;
        let size = read_u32(&mut self.input).ok()?;
        self.remaining -= 1;
        Some(PostorderEntry {
            label: LabelId(label),
            size,
        })
    }

    fn len_hint(&self) -> Option<usize> {
        usize::try_from(self.remaining).ok()
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bracket;
    use crate::postorder_queue::collect_tree;

    fn sample() -> (Tree, LabelDict) {
        let mut dict = LabelDict::new();
        let t = bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}",
            &mut dict,
        )
        .unwrap();
        (t, dict)
    }

    #[test]
    fn round_trip_in_memory() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();

        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.total_nodes(), t.len() as u64);
        assert_eq!(reader.dict().len(), dict.len());
        assert_eq!(reader.dict().resolve(LabelId(0)), dict.resolve(LabelId(0)));
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn round_trip_via_file() {
        let (t, dict) = sample();
        let path = std::env::temp_dir().join(format!("tasm_pf_{}.pq", std::process::id()));
        save_tree(&path, &t, &dict).unwrap();
        let mut reader = PostFileReader::open(&path).unwrap();
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn len_hint_counts_down() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.len_hint(), Some(t.len()));
        reader.dequeue();
        assert_eq!(reader.len_hint(), Some(t.len() - 1));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = PostFileReader::new(&b"NOTAPQFILE______"[..]).unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
    }

    #[test]
    fn rejects_truncated_header() {
        let err = PostFileReader::new(&b"TASMPQ1\n\x01"[..]).unwrap_err();
        assert!(matches!(err, PostFileError::Io(_)));
    }

    #[test]
    fn truncated_entries_end_the_stream() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        bytes.truncate(bytes.len() - 4); // cut the last entry in half
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        let mut n = 0;
        while reader.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, t.len() - 1);
        // The shortfall is detectable after the scan.
        assert_eq!(reader.remaining_nodes(), 1);
    }

    #[test]
    fn writer_validates_count() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        let err = write_postfile(&mut bytes, &dict, &mut q, 99).unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
    }
}
