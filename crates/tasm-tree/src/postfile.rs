//! A binary on-disk format for postorder queues — the "persistent XML
//! store" angle of the paper.
//!
//! Sec. VIII argues the postorder queue "can be implemented by any XML
//! processing or storage system that allows an efficient postorder
//! traversal", citing interval-encoded stores [24]. This module is such a
//! store: parse a document once, persist it as a compact postorder file,
//! and afterwards stream TASM queries straight from disk without
//! re-parsing XML (typically several times smaller and faster to scan).
//!
//! # Format (version 1, little-endian)
//!
//! ```text
//! magic   "TASMPQ1\n"                      8 bytes
//! n_nodes u64
//! n_labels u64
//! labels  n_labels × (u32 len, bytes)       the dictionary, id order
//! entries n_nodes × (u32 label, u32 size)   postorder
//! trailer u32 crc32, "PQC1"                 optional integrity trailer
//! ```
//!
//! The whole dictionary is stored in the header so readers can stream the
//! fixed-width entry section with O(1) state per node.
//!
//! The trailer is a CRC-32 of the entry section followed by the
//! self-identifying magic `"PQC1"`. [`write_postfile`] always emits it;
//! the reader verifies it after the last entry and reports a mismatch
//! through [`PostorderQueue::integrity_error`]. Files written before the
//! trailer existed simply end after the entries — the reader accepts
//! them unverified (their entries are complete, which is the property
//! that matters), while a *partial* trailer or a checksum mismatch is an
//! integrity error, never silently ignored. Version-2 (`.pqi`) files
//! carry their own postings checksum and have index sections where the
//! trailer would sit, so the trailer applies to version 1 only.
//!
//! # Format version 2 (`.pqi`, indexed)
//!
//! Version 2 (magic `"TASMPQ2\n"`) keeps the header and entry sections
//! byte-identical to version 1 — so this streaming reader handles both
//! transparently — and appends inverted-index sections after the entries
//! (per-label postings of postorder positions). The label dictionary of a
//! v2 file is written in **descending frequency** order. The index
//! sections are written and consumed by the `tasm-index` crate; this
//! reader simply stops after `n_nodes` entries and never touches them.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::crc::crc32_update;
use crate::label::{LabelDict, LabelId};
use crate::postorder_queue::{PostorderEntry, PostorderQueue};
use crate::tree::Tree;

/// Magic of a version-1 (plain postorder stream) file.
pub const MAGIC_V1: &[u8; 8] = b"TASMPQ1\n";
/// Magic of a version-2 (indexed, `.pqi`) file.
pub const MAGIC_V2: &[u8; 8] = b"TASMPQ2\n";
/// Magic closing the optional version-1 integrity trailer (it follows
/// the 4-byte CRC-32 of the entry section).
pub const TRAILER_MAGIC: &[u8; 4] = b"PQC1";

/// Errors for the postorder file format.
#[derive(Debug)]
pub enum PostFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic or malformed header/dictionary.
    Format(String),
    /// The file is structurally readable but fails an integrity check
    /// (checksum mismatch, torn write): its content cannot be trusted.
    Corrupt(String),
}

impl std::fmt::Display for PostFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PostFileError::Io(e) => write!(f, "postorder file I/O error: {e}"),
            PostFileError::Format(m) => write!(f, "postorder file format error: {m}"),
            PostFileError::Corrupt(m) => write!(f, "postorder file corrupt: {m}"),
        }
    }
}

impl std::error::Error for PostFileError {}

impl From<io::Error> for PostFileError {
    fn from(e: io::Error) -> Self {
        PostFileError::Io(e)
    }
}

/// Writes `queue` (with its dictionary) to `out` in the postorder file
/// format. `n_nodes` must match the number of entries the queue yields.
pub fn write_postfile<W: Write>(
    mut out: W,
    dict: &LabelDict,
    queue: &mut dyn PostorderQueue,
    n_nodes: u64,
) -> Result<(), PostFileError> {
    out.write_all(MAGIC_V1)?;
    out.write_all(&n_nodes.to_le_bytes())?;
    out.write_all(&(dict.len() as u64).to_le_bytes())?;
    for (_, name) in dict.iter() {
        let bytes = name.as_bytes();
        out.write_all(&(bytes.len() as u32).to_le_bytes())?;
        out.write_all(bytes)?;
    }
    let mut written = 0u64;
    let mut crc = 0u32;
    while let Some(e) = queue.dequeue() {
        let label = e.label.0.to_le_bytes();
        let size = e.size.to_le_bytes();
        crc = crc32_update(crc, &label);
        crc = crc32_update(crc, &size);
        out.write_all(&label)?;
        out.write_all(&size)?;
        written += 1;
    }
    if written != n_nodes {
        return Err(PostFileError::Format(format!(
            "queue yielded {written} entries, header promised {n_nodes}"
        )));
    }
    out.write_all(&crc.to_le_bytes())?;
    out.write_all(TRAILER_MAGIC)?;
    out.flush()?;
    Ok(())
}

/// Convenience: persists an in-memory tree to `path` **atomically**
/// (see [`atomic_write`]): readers never observe a torn `.pq` file.
pub fn save_tree(
    path: impl AsRef<Path>,
    tree: &Tree,
    dict: &LabelDict,
) -> Result<(), PostFileError> {
    atomic_write(path, |out| {
        let mut queue = crate::postorder_queue::TreeQueue::new(tree);
        write_postfile(out, dict, &mut queue, tree.len() as u64)
    })
}

/// Crash-safe file publication: runs `write` against a temp file in the
/// target's directory, fsyncs it, then atomically renames it over
/// `path`. A crash at any point leaves either the old file or the new
/// one — never a torn mix — and a failed write cleans up the temp file
/// instead of leaving it behind.
pub fn atomic_write(
    path: impl AsRef<Path>,
    write: impl FnOnce(&mut BufWriter<File>) -> Result<(), PostFileError>,
) -> Result<(), PostFileError> {
    let path = path.as_ref();
    // The temp file must live on the same filesystem as the target for
    // the rename to be atomic, so it goes next to it.
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut out = BufWriter::new(File::create(&tmp)?);
        write(&mut out)?;
        out.flush()?;
        // Data must be durable BEFORE the rename publishes the name: a
        // rename surviving a crash that the data didn't would swap a
        // good file for garbage.
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself (directory entry). Best-effort:
        // some filesystems refuse directory fsync.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A streaming reader over a postorder file (version 1 or 2): implements
/// [`PostorderQueue`], holding O(1) state beyond the dictionary.
#[derive(Debug)]
pub struct PostFileReader<R: Read> {
    input: R,
    dict: LabelDict,
    remaining: u64,
    total: u64,
    /// Format version from the magic (1 = plain `.pq`, 2 = indexed `.pqi`).
    version: u8,
    /// Set when the entry section ended before `total` nodes were read:
    /// the file is truncated and any ranking over it would be partial.
    truncated: bool,
    /// Running CRC-32 of the entry bytes, compared against the trailer.
    crc: u32,
    /// Outcome of the version-1 trailer check, resolved after the last
    /// entry is dequeued.
    trailer: TrailerState,
}

/// Where the optional version-1 integrity trailer stands.
#[derive(Debug)]
enum TrailerState {
    /// The entry section has not finished streaming yet.
    Unchecked,
    /// No trailer bytes after the entries: a file from before the
    /// trailer existed. Its entries are complete, which is what matters.
    Legacy,
    /// The trailer's checksum matched the streamed entries.
    Verified,
    /// Partial trailer or checksum mismatch: the entries cannot be
    /// trusted.
    Error(String),
}

impl PostFileReader<BufReader<File>> {
    /// Opens a postorder file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PostFileError> {
        let file = File::open(path)?;
        Self::new(BufReader::new(file))
    }
}

impl<R: Read> PostFileReader<R> {
    /// Reads the header and dictionary from `input`.
    pub fn new(mut input: R) -> Result<Self, PostFileError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        let version = if &magic == MAGIC_V1 {
            1
        } else if &magic == MAGIC_V2 {
            2
        } else {
            return Err(PostFileError::Format(
                "bad magic; not a TASMPQ1/TASMPQ2 file".into(),
            ));
        };
        let total = read_u64(&mut input)?;
        let n_labels = read_u64(&mut input)?;
        let mut dict = LabelDict::with_capacity(n_labels as usize);
        let mut buf = Vec::new();
        for i in 0..n_labels {
            let len = read_u32(&mut input)? as usize;
            if len > 1 << 24 {
                return Err(PostFileError::Format(format!("label {i} is {len} bytes")));
            }
            buf.resize(len, 0);
            input.read_exact(&mut buf)?;
            let name = std::str::from_utf8(&buf)
                .map_err(|_| PostFileError::Format(format!("label {i} is not UTF-8")))?;
            let id = dict.intern(name);
            if id.index() as u64 != i {
                return Err(PostFileError::Format(format!("duplicate label {name}")));
            }
        }
        Ok(PostFileReader {
            input,
            dict,
            remaining: total,
            total,
            version,
            truncated: false,
            crc: 0,
            trailer: TrailerState::Unchecked,
        })
    }

    /// The dictionary stored in the file.
    pub fn dict(&self) -> &LabelDict {
        &self.dict
    }

    /// The format version from the magic: 1 (`.pq`) or 2 (`.pqi`).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Total number of nodes in the file.
    pub fn total_nodes(&self) -> u64 {
        self.total
    }

    /// Entries the header promised but that have not been dequeued yet.
    ///
    /// [`PostorderQueue::dequeue`] ends the stream early (returns `None`)
    /// on a short read, so after a scan a non-zero value means the file
    /// was **truncated** — callers that must not silently accept partial
    /// documents (e.g. the CLI) check this. The scan drivers in
    /// `tasm-core` detect the same condition through
    /// [`PostorderQueue::integrity_error`].
    pub fn remaining_nodes(&self) -> u64 {
        self.remaining
    }

    /// Consumes the reader, returning the dictionary (e.g. to resolve
    /// match labels after the scan).
    pub fn into_dict(self) -> LabelDict {
        self.dict
    }

    /// Consumes the reader, returning the underlying input positioned
    /// after the last byte read, plus the dictionary — so an index
    /// loader can continue with the sections that follow the entry
    /// stream of a version-2 file.
    pub fn into_inner(self) -> (R, LabelDict) {
        (self.input, self.dict)
    }

    /// Resolves the version-1 integrity trailer once the entry section
    /// has streamed completely. Absent trailer bytes mean a pre-trailer
    /// file (accepted — its entries are complete); a partial trailer or
    /// a checksum mismatch is recorded for
    /// [`PostorderQueue::integrity_error`]. Version-2 files carry index
    /// sections here instead, so they are never probed.
    fn check_trailer(&mut self) {
        if self.version != 1 || !matches!(self.trailer, TrailerState::Unchecked) {
            return;
        }
        let mut buf = [0u8; 8];
        let mut n = 0usize;
        while n < buf.len() {
            match self.input.read(&mut buf[n..]) {
                Ok(0) => break,
                Ok(m) => n += m,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.trailer =
                        TrailerState::Error(format!("I/O error reading entry trailer: {e}"));
                    return;
                }
            }
        }
        self.trailer = if n == 0 {
            TrailerState::Legacy
        } else if n == buf.len() && &buf[4..8] == TRAILER_MAGIC {
            let stored = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
            if stored == self.crc {
                TrailerState::Verified
            } else {
                TrailerState::Error(format!(
                    "entry checksum mismatch (stored {stored:08x}, computed {:08x}): \
                     torn or bit-rotted postorder file",
                    self.crc
                ))
            }
        } else {
            TrailerState::Error(format!(
                "malformed entry trailer ({n} trailing bytes; expected crc32 + \"PQC1\")"
            ))
        };
    }
}

impl<R: Read> PostorderQueue for PostFileReader<R> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        if self.remaining == 0 {
            // Covers n_nodes == 0 files: the trailer check still runs.
            self.check_trailer();
            return None;
        }
        let mut bytes = [0u8; 8];
        if self.input.read_exact(&mut bytes).is_err() {
            // The header promised more nodes than the byte stream
            // holds: remember the shortfall so drivers can refuse
            // the partial document instead of ranking it.
            self.truncated = true;
            return None;
        }
        self.crc = crc32_update(self.crc, &bytes);
        let label = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let size = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        self.remaining -= 1;
        if self.remaining == 0 {
            self.check_trailer();
        }
        Some(PostorderEntry {
            label: LabelId(label),
            size,
        })
    }

    fn len_hint(&self) -> Option<usize> {
        usize::try_from(self.remaining).ok()
    }

    fn integrity_error(&self) -> Option<String> {
        if self.truncated {
            return Some(format!(
                "postorder file truncated: {} of {} nodes missing",
                self.remaining, self.total
            ));
        }
        match &self.trailer {
            TrailerState::Error(msg) => Some(msg.clone()),
            _ => None,
        }
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bracket;
    use crate::postorder_queue::collect_tree;

    fn sample() -> (Tree, LabelDict) {
        let mut dict = LabelDict::new();
        let t = bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}",
            &mut dict,
        )
        .unwrap();
        (t, dict)
    }

    #[test]
    fn round_trip_in_memory() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();

        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.total_nodes(), t.len() as u64);
        assert_eq!(reader.dict().len(), dict.len());
        assert_eq!(reader.dict().resolve(LabelId(0)), dict.resolve(LabelId(0)));
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn round_trip_via_file() {
        let (t, dict) = sample();
        let path = std::env::temp_dir().join(format!("tasm_pf_{}.pq", std::process::id()));
        save_tree(&path, &t, &dict).unwrap();
        let mut reader = PostFileReader::open(&path).unwrap();
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn len_hint_counts_down() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.len_hint(), Some(t.len()));
        reader.dequeue();
        assert_eq!(reader.len_hint(), Some(t.len() - 1));
    }

    #[test]
    fn rejects_bad_magic() {
        let err = PostFileReader::new(&b"NOTAPQFILE______"[..]).unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
    }

    #[test]
    fn rejects_truncated_header() {
        let err = PostFileReader::new(&b"TASMPQ1\n\x01"[..]).unwrap_err();
        assert!(matches!(err, PostFileError::Io(_)));
    }

    #[test]
    fn truncated_entries_end_the_stream() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        bytes.truncate(bytes.len() - 12); // 8-byte trailer + half an entry
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        let mut n = 0;
        while reader.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, t.len() - 1);
        // The shortfall is detectable after the scan.
        assert_eq!(reader.remaining_nodes(), 1);
        let msg = reader.integrity_error().expect("truncation is reported");
        assert!(msg.contains("truncated"), "{msg}");
    }

    /// Cuts a `.pq` at every byte offset past the header: each prefix
    /// must surface as truncation or a trailer error — with one sound
    /// exception, the cut that removes exactly the whole trailer, which
    /// leaves every entry intact and reads as a legacy file.
    #[test]
    fn every_entry_section_cut_is_detected() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        let entries_start = bytes.len() - 8 - 8 * t.len();
        for cut in entries_start..bytes.len() {
            let mut reader = PostFileReader::new(&bytes[..cut]).unwrap();
            while reader.dequeue().is_some() {}
            let err = reader.integrity_error();
            if cut == bytes.len() - 8 {
                assert_eq!(err, None, "trailer-only cut reads as legacy");
            } else {
                assert!(err.is_some(), "cut at byte {cut} accepted silently");
            }
        }
    }

    #[test]
    fn legacy_files_without_trailer_still_read() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        bytes.truncate(bytes.len() - 8); // what a pre-trailer writer produced
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
        assert_eq!(reader.integrity_error(), None);
    }

    #[test]
    fn flipped_entry_byte_fails_the_trailer_check() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        let at = bytes.len() - 8 - 3; // inside the last entry
        bytes[at] ^= 0x04;
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        while reader.dequeue().is_some() {}
        let msg = reader.integrity_error().expect("bit rot is reported");
        assert!(msg.contains("checksum mismatch"), "{msg}");
    }

    #[test]
    fn empty_document_trailer_is_verified() {
        struct Empty;
        impl PostorderQueue for Empty {
            fn dequeue(&mut self) -> Option<PostorderEntry> {
                None
            }
        }
        let dict = LabelDict::new();
        let mut bytes = Vec::new();
        write_postfile(&mut bytes, &dict, &mut Empty, 0).unwrap();
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert!(reader.dequeue().is_none());
        assert_eq!(reader.integrity_error(), None);
        // Flip the empty-section CRC: still detected.
        let at = bytes.len() - 8;
        bytes[at] ^= 0x01;
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert!(reader.dequeue().is_none());
        assert!(reader.integrity_error().is_some());
    }

    #[test]
    fn complete_stream_reports_no_integrity_error() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.version(), 1);
        while reader.dequeue().is_some() {}
        assert_eq!(reader.integrity_error(), None);
    }

    #[test]
    fn v2_magic_streams_like_v1() {
        // A v2 file is a v1 file with a different magic plus trailing
        // index sections; the streaming reader must accept it and stop
        // after the entry section.
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        bytes[..8].copy_from_slice(MAGIC_V2);
        bytes.extend_from_slice(&[0xAB; 16]); // fake trailing index data
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.version(), 2);
        let t2 = collect_tree(&mut reader).unwrap();
        assert_eq!(t, t2);
        assert_eq!(reader.integrity_error(), None);
    }

    #[test]
    fn atomic_write_leaves_no_temp_file_on_success_or_failure() {
        let (t, dict) = sample();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tasm_aw_{}.pq", std::process::id()));
        save_tree(&path, &t, &dict).unwrap();
        assert!(path.exists());
        // A failing writer must clean up and leave the published file
        // exactly as it was.
        let before = std::fs::read(&path).unwrap();
        let err = atomic_write(&path, |_| {
            Err(PostFileError::Format("writer exploded".into()))
        })
        .unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| {
                n.starts_with(&format!("tasm_aw_{}", std::process::id())) && n.contains(".tmp.")
            })
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_tree_overwrites_atomically() {
        let (t, dict) = sample();
        let path = std::env::temp_dir().join(format!("tasm_ow_{}.pq", std::process::id()));
        save_tree(&path, &t, &dict).unwrap();
        // Overwrite with a different tree; the new content replaces the
        // old wholesale.
        let mut dict2 = LabelDict::new();
        let t2 = bracket::parse("{a{b}}", &mut dict2).unwrap();
        save_tree(&path, &t2, &dict2).unwrap();
        let mut reader = PostFileReader::open(&path).unwrap();
        let back = collect_tree(&mut reader).unwrap();
        assert_eq!(back, t2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_validates_count() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = crate::postorder_queue::TreeQueue::new(&t);
        let err = write_postfile(&mut bytes, &dict, &mut q, 99).unwrap_err();
        assert!(matches!(err, PostFileError::Format(_)));
    }
}
