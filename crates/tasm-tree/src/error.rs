//! Error types for tree construction and parsing.

use std::fmt;

/// Errors produced when constructing or validating trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A `(label, size)` postorder sequence does not encode a tree: the
    /// declared subtree size at this postorder position cannot be assembled
    /// from the subtrees completed so far.
    InvalidPostorder {
        /// 1-based postorder position of the offending entry.
        position: usize,
        /// The declared subtree size.
        size: u32,
    },
    /// The postorder sequence ended with more than one root (a forest) or
    /// with a root whose size does not cover all nodes.
    NotATree {
        /// Number of disconnected subtrees remaining.
        roots: usize,
    },
    /// The input was empty; trees are non-empty by definition (Sec. IV-A).
    Empty,
    /// A builder `end()` call without a matching `start()`.
    UnbalancedEnd,
    /// A builder finished while elements were still open.
    UnclosedStart {
        /// How many elements were still open.
        open: usize,
    },
    /// Bracket-notation syntax error.
    BracketSyntax {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::InvalidPostorder { position, size } => write!(
                f,
                "invalid postorder sequence: entry {position} declares subtree size {size} \
                 which does not match the completed subtrees before it"
            ),
            TreeError::NotATree { roots } => {
                write!(
                    f,
                    "postorder sequence encodes a forest of {roots} trees, not a tree"
                )
            }
            TreeError::Empty => write!(f, "trees are non-empty; got an empty input"),
            TreeError::UnbalancedEnd => write!(f, "end() without matching start()"),
            TreeError::UnclosedStart { open } => {
                write!(f, "builder finished with {open} unclosed start() calls")
            }
            TreeError::BracketSyntax { offset, message } => {
                write!(f, "bracket syntax error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for TreeError {}
