//! Bracket notation for trees: a compact text format used in tests,
//! examples and the CLI.
//!
//! Grammar: `tree := '{' label tree* '}'`. The label is any run of
//! characters other than `{`, `}` and `\`; those three can be escaped with a
//! backslash. Whitespace between trees is ignored. Example:
//! `{a{b}{c}}` is the query G of the paper's Fig. 2.
//!
//! This is the notation commonly used by tree-edit-distance implementations,
//! which makes hand-written fixtures easy to diff against the literature.

use crate::error::TreeError;
use crate::label::LabelDict;
use crate::tree::Tree;
use crate::TreeBuilder;

/// Parses a tree in bracket notation, interning labels into `dict`.
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// assert_eq!(g.len(), 3);
/// assert_eq!(bracket::to_string(&g, &dict), "{a{b}{c}}");
/// ```
pub fn parse(input: &str, dict: &mut LabelDict) -> Result<Tree, TreeError> {
    let bytes = input.as_bytes();
    let mut builder = TreeBuilder::new();
    let mut i = 0usize;
    let mut label = String::new();
    let mut depth = 0usize;
    let mut seen_root = false;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                if depth == 0 && seen_root {
                    return Err(TreeError::BracketSyntax {
                        offset: i,
                        message: "trailing content after the root tree".into(),
                    });
                }
                depth += 1;
                i += 1;
                // Read the label up to the next unescaped '{' or '}'.
                label.clear();
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => {
                            label.push(bytes[i + 1] as char);
                            i += 2;
                        }
                        b'{' | b'}' => break,
                        _ => {
                            // Collect raw UTF-8 bytes; validity is inherited
                            // from the &str input.
                            let start = i;
                            let ch_len = utf8_len(bytes[i]);
                            i += ch_len;
                            label.push_str(&input[start..i]);
                        }
                    }
                }
                builder.start(dict.intern(label.trim()));
            }
            b'}' => {
                if depth == 0 {
                    return Err(TreeError::BracketSyntax {
                        offset: i,
                        message: "unmatched '}'".into(),
                    });
                }
                builder.end().expect("depth tracked above");
                depth -= 1;
                if depth == 0 {
                    seen_root = true;
                }
                i += 1;
            }
            c if (c as char).is_whitespace() => i += 1,
            _ => {
                return Err(TreeError::BracketSyntax {
                    offset: i,
                    message: "expected '{'".into(),
                })
            }
        }
    }
    if depth != 0 {
        return Err(TreeError::BracketSyntax {
            offset: input.len(),
            message: format!("{depth} unclosed '{{'"),
        });
    }
    builder.finish()
}

/// Serializes `tree` to bracket notation, resolving labels through `dict`.
///
/// Labels containing `{`, `}` or `\` are escaped so the output always
/// re-parses to an equal tree.
pub fn to_string(tree: &Tree, dict: &LabelDict) -> String {
    let mut out = String::with_capacity(tree.len() * 4);
    write_node(tree, dict, tree.root(), &mut out);
    out
}

fn write_node(tree: &Tree, dict: &LabelDict, node: crate::NodeId, out: &mut String) {
    out.push('{');
    for ch in dict.resolve(tree.label(node)).chars() {
        if matches!(ch, '{' | '}' | '\\') {
            out.push('\\');
        }
        out.push(ch);
    }
    for child in tree.children(node) {
        write_node(tree, dict, child, out);
    }
    out.push('}');
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn round_trip(s: &str) -> String {
        let mut d = LabelDict::new();
        let t = parse(s, &mut d).unwrap();
        to_string(&t, &d)
    }

    #[test]
    fn parses_paper_query_g() {
        let mut d = LabelDict::new();
        let g = parse("{a{b}{c}}", &mut d).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(d.resolve(g.label(NodeId::new(3))), "a");
        assert_eq!(d.resolve(g.label(NodeId::new(1))), "b");
        assert_eq!(d.resolve(g.label(NodeId::new(2))), "c");
    }

    #[test]
    fn parses_paper_document_h() {
        let mut d = LabelDict::new();
        let h = parse("{x{a{b}{d}}{a{b}{c}}}", &mut d).unwrap();
        assert_eq!(h.len(), 7);
        assert_eq!(h.size(NodeId::new(3)), 3);
        assert_eq!(h.height(), 2);
    }

    #[test]
    fn round_trips() {
        for s in ["{a}", "{a{b}}", "{a{b}{c}{d}}", "{x{a{b}{d}}{a{b}{c}}}"] {
            assert_eq!(round_trip(s), s);
        }
    }

    #[test]
    fn whitespace_between_trees_is_ignored() {
        let mut d = LabelDict::new();
        let t = parse("{ a {b} \n {c} }", &mut d).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(d.resolve(t.label(t.root())), "a");
    }

    #[test]
    fn escaped_braces_in_labels() {
        let mut d = LabelDict::new();
        let t = parse(r"{a\{b\}}", &mut d).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(d.resolve(t.label(t.root())), "a{b}");
        // And escaping survives serialization.
        assert_eq!(to_string(&t, &d), r"{a\{b\}}");
    }

    #[test]
    fn unicode_labels() {
        assert_eq!(round_trip("{héllo{wörld}}"), "{héllo{wörld}}");
    }

    #[test]
    fn empty_label_is_allowed() {
        let mut d = LabelDict::new();
        let t = parse("{{x}}", &mut d).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(d.resolve(t.label(t.root())), "");
    }

    #[test]
    fn error_unmatched_close() {
        let mut d = LabelDict::new();
        assert!(matches!(
            parse("}", &mut d),
            Err(TreeError::BracketSyntax { offset: 0, .. })
        ));
    }

    #[test]
    fn error_unclosed_open() {
        let mut d = LabelDict::new();
        assert!(matches!(
            parse("{a{b}", &mut d),
            Err(TreeError::BracketSyntax { .. })
        ));
    }

    #[test]
    fn error_trailing_garbage() {
        let mut d = LabelDict::new();
        assert!(matches!(
            parse("{a}{b}", &mut d),
            Err(TreeError::BracketSyntax { .. })
        ));
        assert!(matches!(
            parse("x", &mut d),
            Err(TreeError::BracketSyntax { .. })
        ));
    }

    #[test]
    fn error_empty_input() {
        let mut d = LabelDict::new();
        assert!(matches!(parse("", &mut d), Err(TreeError::Empty)));
        assert!(matches!(parse("   ", &mut d), Err(TreeError::Empty)));
    }
}
