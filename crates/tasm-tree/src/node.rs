//! Node identifiers.

use std::fmt;

/// Identifier of a node: its **postorder number**, 1-based.
///
/// The paper orders nodes by postorder traversal (Sec. IV-A): node `i` is the
/// `i`-th node visited in postorder, children precede parents, and a subtree
/// rooted at node `i` occupies the *contiguous* postorder interval
/// `[lml(i), i]` where `lml` is the leftmost leaf. This makes the postorder
/// number the natural node identity for every algorithm in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a 1-based postorder number.
    ///
    /// # Panics
    ///
    /// Panics if `post` is zero (postorder numbers are 1-based).
    #[inline]
    pub fn new(post: u32) -> Self {
        assert!(post > 0, "postorder numbers are 1-based");
        NodeId(post)
    }

    /// The 1-based postorder number.
    #[inline]
    pub fn post(self) -> u32 {
        self.0
    }

    /// The 0-based index into the tree's internal arrays.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Creates a node id from a 0-based array index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32 + 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(post: u32) -> Self {
        NodeId::new(post)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn post_and_index_round_trip() {
        let id = NodeId::new(5);
        assert_eq!(id.post(), 5);
        assert_eq!(id.index(), 4);
        assert_eq!(NodeId::from_index(4), id);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_is_rejected() {
        let _ = NodeId::new(0);
    }

    #[test]
    fn ordering_follows_postorder() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(3).to_string(), "t3");
    }
}
