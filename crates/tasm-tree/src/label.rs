//! Label interning.
//!
//! The paper (Sec. VII) uses "a dictionary to assign unique integer
//! identifiers to node labels (element/attribute tags as well as text
//! content). The integer identifiers provide compression and faster
//! node-to-node comparisons". [`LabelDict`] is that dictionary: a
//! bidirectional map between strings and dense [`LabelId`]s.

use std::collections::HashMap;
use std::fmt;

/// A dense integer identifier for a node label.
///
/// Two nodes have equal labels iff their `LabelId`s are equal *within the
/// same [`LabelDict`]*. Comparing ids minted by different dictionaries is a
/// logic error; keep one dictionary per matching task (query and document
/// must share it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The index of this label in its dictionary.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An interning dictionary mapping label strings to dense [`LabelId`]s.
///
/// # Examples
///
/// ```
/// use tasm_tree::LabelDict;
///
/// let mut dict = LabelDict::new();
/// let a = dict.intern("article");
/// let b = dict.intern("title");
/// assert_ne!(a, b);
/// assert_eq!(dict.intern("article"), a); // stable
/// assert_eq!(dict.resolve(a), "article");
/// assert_eq!(dict.len(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct LabelDict {
    by_name: HashMap<Box<str>, LabelId>,
    names: Vec<Box<str>>,
}

impl LabelDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `n` distinct labels.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            by_name: HashMap::with_capacity(n),
            names: Vec::with_capacity(n),
        }
    }

    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(u32::try_from(self.names.len()).expect("more than u32::MAX labels"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.by_name.insert(boxed, id);
        id
    }

    /// Returns the id of `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not minted by this dictionary.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Returns the string for `id`, or `None` if out of range.
    pub fn try_resolve(&self, id: LabelId) -> Option<&str> {
        self.names.get(id.index()).map(|s| &**s)
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = LabelDict::new();
        let a1 = d.intern("a");
        let a2 = d.intern("a");
        assert_eq!(a1, a2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_use() {
        let mut d = LabelDict::new();
        assert_eq!(d.intern("x"), LabelId(0));
        assert_eq!(d.intern("y"), LabelId(1));
        assert_eq!(d.intern("x"), LabelId(0));
        assert_eq!(d.intern("z"), LabelId(2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = LabelDict::new();
        let ids: Vec<_> = ["dblp", "article", "title", ""]
            .iter()
            .map(|s| d.intern(s))
            .collect();
        for (i, s) in ["dblp", "article", "title", ""].iter().enumerate() {
            assert_eq!(d.resolve(ids[i]), *s);
        }
    }

    #[test]
    fn get_returns_none_for_unknown() {
        let mut d = LabelDict::new();
        d.intern("known");
        assert!(d.get("unknown").is_none());
        assert_eq!(d.get("known"), Some(LabelId(0)));
    }

    #[test]
    fn try_resolve_out_of_range() {
        let d = LabelDict::new();
        assert!(d.try_resolve(LabelId(7)).is_none());
    }

    #[test]
    fn iter_visits_in_order() {
        let mut d = LabelDict::new();
        d.intern("a");
        d.intern("b");
        let v: Vec<_> = d.iter().map(|(i, s)| (i.0, s.to_string())).collect();
        assert_eq!(v, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn empty_dict() {
        let d = LabelDict::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
