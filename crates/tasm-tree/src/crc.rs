//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the
//! dependency-free, table-driven implementation shared by every on-disk
//! integrity check in the workspace: the `.pq` entry trailer
//! ([`postfile`](crate::postfile)), the `.pqi` postings trailer and the
//! corpus `MANIFEST` (`tasm-index`).
//!
//! `crc32_update(0, bytes)` equals the standard one-shot `crc32(bytes)`;
//! chain calls to hash a stream incrementally.

use std::io::{self, Read};

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Folds `bytes` into a running CRC-32. Start from `0`; the result of
/// one call is the seed of the next, so chained updates equal one-shot
/// hashing of the concatenation.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// [`Read`] adapter hashing every byte it delivers with CRC-32 — wrap a
/// reader before a checksummed section, compare [`Crc32Reader::crc`]
/// against the stored trailer after it.
#[derive(Debug)]
pub struct Crc32Reader<R> {
    inner: R,
    crc: u32,
}

impl<R> Crc32Reader<R> {
    /// Wraps `inner` with a fresh (zero) running CRC.
    pub fn new(inner: R) -> Self {
        Crc32Reader { inner, crc: 0 }
    }

    /// The CRC-32 of every byte read so far.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// Unwraps the adapter, returning the inner reader positioned after
    /// the last byte read.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for Crc32Reader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32_update(0, b"123456789"), 0xCBF4_3926);
        // Chained updates equal one-shot hashing.
        let chained = crc32_update(crc32_update(0, b"12345"), b"6789");
        assert_eq!(chained, 0xCBF4_3926);
        assert_eq!(crc32_update(0, b""), 0);
    }

    #[test]
    fn reader_hashes_exactly_the_bytes_it_delivers() {
        let mut r = Crc32Reader::new(&b"123456789xx"[..]);
        let mut buf = [0u8; 9];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(r.crc(), 0xCBF4_3926);
        let inner = r.into_inner();
        assert_eq!(inner, b"xx");
    }
}
