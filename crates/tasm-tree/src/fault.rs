//! Fault injection for byte streams (compiled only with the
//! `fault-inject` feature).
//!
//! A resident matcher must survive what one-shot runs never see: readers
//! that return two bytes at a time, stall mid-record, cut off inside an
//! entry, or hand back flipped bits. [`FaultyReader`] wraps any
//! [`Read`] and injects exactly those failures at byte-precise offsets,
//! so integration tests can prove every failure mode yields a clean
//! structured error — never a crash, a hang past the deadline, or a
//! silently wrong ranking.
//!
//! The faults compose: a [`FaultPlan`] is an ordered list applied to
//! every `read` call. Offsets count bytes of the *underlying* stream
//! delivered so far (truncation points are exact; corruption hits the
//! exact byte).

use std::io::{self, Read};
use std::time::Duration;

/// One injected failure mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Deliver at most `max` bytes per `read` call (exercises every
    /// short-read loop; a correct consumer sees identical bytes).
    ShortReads {
        /// Per-call byte cap (clamped to `>= 1`).
        max: usize,
    },
    /// End the stream (EOF) after exactly `at` bytes — a torn write or
    /// a peer that died mid-record.
    TruncateAt {
        /// Byte offset at which the stream ends.
        at: u64,
    },
    /// Sleep once for `dur` before the read that would cross offset
    /// `at` — a stalled disk or network peer. The stream then resumes.
    StallAt {
        /// Byte offset at which the stall happens.
        at: u64,
        /// How long the single stall lasts.
        dur: Duration,
    },
    /// XOR the byte at offset `at` with `xor` — silent bit rot that
    /// only checksums or cross-validation can catch.
    CorruptAt {
        /// Byte offset of the corrupted byte.
        at: u64,
        /// Mask XORed into that byte (use a non-zero mask).
        xor: u8,
    },
}

/// An ordered list of [`Fault`]s applied to a [`FaultyReader`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (the reader behaves transparently).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a [`Fault::ShortReads`] cap.
    pub fn short_reads(mut self, max: usize) -> Self {
        self.faults.push(Fault::ShortReads { max });
        self
    }

    /// Adds a [`Fault::TruncateAt`] cut.
    pub fn truncate_at(mut self, at: u64) -> Self {
        self.faults.push(Fault::TruncateAt { at });
        self
    }

    /// Adds a [`Fault::StallAt`] delay.
    pub fn stall_at(mut self, at: u64, dur: Duration) -> Self {
        self.faults.push(Fault::StallAt { at, dur });
        self
    }

    /// Adds a [`Fault::CorruptAt`] bit flip.
    pub fn corrupt_at(mut self, at: u64, xor: u8) -> Self {
        self.faults.push(Fault::CorruptAt { at, xor });
        self
    }

    /// The faults in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// A [`Read`] adapter executing a [`FaultPlan`] over an inner reader.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
    /// Bytes of the underlying stream delivered so far.
    pos: u64,
    /// Each `StallAt` fires once; indexed in plan order.
    stalled: Vec<bool>,
}

impl<R> FaultyReader<R> {
    /// Wraps `inner`, injecting the faults of `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        let stalled = vec![false; plan.faults.len()];
        FaultyReader {
            inner,
            plan,
            pos: 0,
            stalled,
        }
    }

    /// Bytes delivered so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Consumes the adapter, returning the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut limit = buf.len();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            match *fault {
                Fault::ShortReads { max } => limit = limit.min(max.max(1)),
                Fault::TruncateAt { at } => {
                    if self.pos >= at {
                        return Ok(0); // premature EOF
                    }
                    limit = limit.min((at - self.pos) as usize);
                }
                Fault::StallAt { at, dur } => {
                    if self.pos >= at && !self.stalled[i] {
                        self.stalled[i] = true;
                        std::thread::sleep(dur);
                    }
                }
                Fault::CorruptAt { .. } => {}
            }
        }
        let n = self.inner.read(&mut buf[..limit])?;
        for fault in &self.plan.faults {
            if let Fault::CorruptAt { at, xor } = *fault {
                if at >= self.pos && at < self.pos + n as u64 {
                    buf[(at - self.pos) as usize] ^= xor;
                }
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: &[u8] = b"0123456789abcdef";

    fn drain(mut r: impl Read) -> Vec<u8> {
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        out
    }

    #[test]
    fn short_reads_deliver_identical_bytes() {
        let r = FaultyReader::new(DATA, FaultPlan::new().short_reads(3));
        assert_eq!(drain(r), DATA);
        // Per-call cap is respected.
        let mut r = FaultyReader::new(DATA, FaultPlan::new().short_reads(3));
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"012");
    }

    #[test]
    fn truncate_cuts_at_the_exact_offset() {
        let r = FaultyReader::new(DATA, FaultPlan::new().truncate_at(5));
        assert_eq!(drain(r), b"01234");
        let r = FaultyReader::new(DATA, FaultPlan::new().truncate_at(0));
        assert_eq!(drain(r), b"");
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let r = FaultyReader::new(DATA, FaultPlan::new().corrupt_at(4, 0xFF));
        let got = drain(r);
        assert_eq!(got.len(), DATA.len());
        assert_eq!(got[4], b'4' ^ 0xFF);
        let mut want = DATA.to_vec();
        want[4] = got[4];
        assert_eq!(got, want);
    }

    #[test]
    fn corrupt_hits_its_byte_even_under_short_reads() {
        let r = FaultyReader::new(DATA, FaultPlan::new().short_reads(2).corrupt_at(7, 0x01));
        let got = drain(r);
        assert_eq!(got[7], b'7' ^ 0x01);
    }

    #[test]
    fn stall_fires_once_and_the_stream_resumes() {
        let plan = FaultPlan::new().stall_at(8, Duration::from_millis(30));
        let r = FaultyReader::new(DATA, plan);
        let t0 = std::time::Instant::now();
        assert_eq!(drain(r), DATA);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn position_tracks_delivered_bytes() {
        let mut r = FaultyReader::new(DATA, FaultPlan::new().short_reads(4));
        let mut buf = [0u8; 16];
        let n = r.read(&mut buf).unwrap();
        assert_eq!(n, 4, "short-read plan caps the first read");
        assert_eq!(r.position(), 4);
    }
}
