//! The ordered labeled tree, stored as a postorder arena.
//!
//! A [`Tree`] is two parallel arrays indexed by postorder number: the label
//! and the subtree size of each node. This is exactly the information the
//! paper's *postorder queue* (Def. 2) carries, and it uniquely determines
//! the tree: the subtree rooted at node `i` spans the contiguous postorder
//! interval `[i - size(i) + 1, i]`.
//!
//! All structural queries (children, parent, leftmost leaf, depth) are
//! derived from the size array; no pointers are stored.

use crate::error::TreeError;
use crate::label::LabelId;
use crate::node::NodeId;

/// An ordered labeled tree in postorder arena representation.
///
/// Nodes are addressed by [`NodeId`] (1-based postorder number). The tree is
/// immutable after construction; build one with [`TreeBuilder`](crate::TreeBuilder),
/// [`Tree::from_postorder`], or the bracket parser.
///
/// # Examples
///
/// ```
/// use tasm_tree::{LabelDict, Tree, NodeId};
///
/// let mut dict = LabelDict::new();
/// // The example query G of the paper (Fig. 2): a(b, c)
/// let (a, b, c) = (dict.intern("a"), dict.intern("b"), dict.intern("c"));
/// let g = Tree::from_postorder(vec![(b, 1), (c, 1), (a, 3)]).unwrap();
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.root(), NodeId::new(3));
/// assert_eq!(g.label(NodeId::new(3)), a);
/// assert!(g.is_leaf(NodeId::new(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tree {
    labels: Vec<LabelId>,
    sizes: Vec<u32>,
}

impl Tree {
    /// Builds a tree from a postorder `(label, subtree_size)` sequence,
    /// validating that the sequence encodes a single well-formed tree.
    ///
    /// This is the inverse of [`Tree::postorder`] and accepts exactly the
    /// content of a postorder queue (Def. 2).
    ///
    /// # Errors
    ///
    /// [`TreeError::Empty`] for an empty sequence,
    /// [`TreeError::InvalidPostorder`] if a size is inconsistent,
    /// [`TreeError::NotATree`] if the sequence encodes a forest.
    pub fn from_postorder(
        entries: impl IntoIterator<Item = (LabelId, u32)>,
    ) -> Result<Self, TreeError> {
        let iter = entries.into_iter();
        let (lower, _) = iter.size_hint();
        let mut labels = Vec::with_capacity(lower);
        let mut sizes = Vec::with_capacity(lower);
        // Stack of completed top-level subtree sizes so far.
        let mut stack: Vec<u32> = Vec::new();
        for (pos, (label, size)) in iter.enumerate() {
            if size == 0 {
                return Err(TreeError::InvalidPostorder {
                    position: pos + 1,
                    size,
                });
            }
            // The new node adopts the most recent completed subtrees as its
            // children; their sizes must sum to exactly size - 1.
            let mut need = size - 1;
            while need > 0 {
                let child = stack.pop().ok_or(TreeError::InvalidPostorder {
                    position: pos + 1,
                    size,
                })?;
                if child > need {
                    return Err(TreeError::InvalidPostorder {
                        position: pos + 1,
                        size,
                    });
                }
                need -= child;
            }
            stack.push(size);
            labels.push(label);
            sizes.push(size);
        }
        if labels.is_empty() {
            return Err(TreeError::Empty);
        }
        if stack.len() != 1 {
            return Err(TreeError::NotATree { roots: stack.len() });
        }
        Ok(Tree { labels, sizes })
    }

    /// Builds a tree from raw postorder arrays **without validation**.
    ///
    /// The caller must guarantee that `(labels[i], sizes[i])` is a valid
    /// postorder encoding of a single tree (as checked by
    /// [`Tree::from_postorder`]). Used on hot paths where the encoding is
    /// correct by construction, e.g. extracting a subtree slice.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the arrays are empty or of unequal length.
    pub fn from_postorder_unchecked(labels: Vec<LabelId>, sizes: Vec<u32>) -> Self {
        debug_assert_eq!(labels.len(), sizes.len());
        debug_assert!(!labels.is_empty());
        debug_assert_eq!(sizes[labels.len() - 1] as usize, labels.len());
        Tree { labels, sizes }
    }

    /// Overwrites this tree in place with the given postorder encoding,
    /// **without validation**, reusing the existing buffers.
    ///
    /// This is the scratch-tree API used by the streaming workspaces:
    /// buffers grow but never shrink, so repeatedly rebuilding a scratch
    /// tree is allocation-free once its capacity covers the largest
    /// encoding seen. The entries must satisfy the invariants of
    /// [`Tree::from_postorder_unchecked`]; only debug assertions check
    /// them.
    pub fn set_postorder_unchecked(&mut self, entries: impl IntoIterator<Item = (LabelId, u32)>) {
        self.labels.clear();
        self.sizes.clear();
        for (label, size) in entries {
            self.labels.push(label);
            self.sizes.push(size);
        }
        debug_assert!(!self.labels.is_empty());
        debug_assert_eq!(
            self.sizes[self.labels.len() - 1] as usize,
            self.labels.len()
        );
    }

    /// Overwrites this tree in place with a copy of the subtree of `src`
    /// rooted at `node`, reusing buffers. Equivalent to
    /// `*self = src.subtree(node)` but allocation-free once capacity
    /// suffices.
    pub fn clone_subtree_from(&mut self, src: &Tree, node: NodeId) {
        let lo = src.lml(node).index();
        let hi = node.index() + 1;
        self.labels.clear();
        self.labels.extend_from_slice(&src.labels[lo..hi]);
        self.sizes.clear();
        self.sizes.extend_from_slice(&src.sizes[lo..hi]);
    }

    /// Ensures capacity for at least `n` nodes without changing the
    /// tree's content (scratch-tree warm-up).
    pub fn reserve(&mut self, n: usize) {
        self.labels.reserve(n.saturating_sub(self.labels.len()));
        self.sizes.reserve(n.saturating_sub(self.sizes.len()));
    }

    /// A single-node tree.
    pub fn leaf(label: LabelId) -> Self {
        Tree {
            labels: vec![label],
            sizes: vec![1],
        }
    }

    /// Number of nodes `|T|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Trees are non-empty by definition; always `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node (largest postorder number).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::from_index(self.labels.len() - 1)
    }

    /// The label of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> LabelId {
        self.labels[node.index()]
    }

    /// The size of the subtree rooted at `node` (including `node`).
    #[inline]
    pub fn size(&self, node: NodeId) -> u32 {
        self.sizes[node.index()]
    }

    /// The leftmost leaf `lml(node)`: the smallest descendant in postorder.
    #[inline]
    pub fn lml(&self, node: NodeId) -> NodeId {
        NodeId::new(node.post() - self.size(node) + 1)
    }

    /// Whether `node` is a leaf.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.size(node) == 1
    }

    /// Whether `a` is an ancestor of `b` (strict: `a != b`).
    ///
    /// In postorder-interval terms: `b`'s interval is strictly inside `a`'s.
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.lml(a) <= b && b < a
    }

    /// Whether `a` is to the left of `b` (Sec. IV-A: `a < b` and `a` is not
    /// a descendant of `b`).
    #[inline]
    pub fn is_left_of(&self, a: NodeId, b: NodeId) -> bool {
        a < b && self.lml(b) > a
    }

    /// Iterates over all node ids in postorder (ascending).
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.labels.len()).map(NodeId::from_index)
    }

    /// Iterates over the children of `node` from **right to left**.
    ///
    /// Right-to-left is the natural direction in a postorder arena: the
    /// rightmost child is at `node - 1`, and each further sibling is found by
    /// skipping the previous child's subtree. O(1) per child, no allocation.
    pub fn children_rl(&self, node: NodeId) -> ChildrenRl<'_> {
        ChildrenRl {
            tree: self,
            lml: self.lml(node).post(),
            next: node.post() - 1, // 0 when node is a leaf => iterator empty
        }
    }

    /// The children of `node` from left to right (allocates).
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.children_rl(node).collect();
        v.reverse();
        v
    }

    /// The fanout (number of children) of `node`.
    pub fn fanout(&self, node: NodeId) -> usize {
        self.children_rl(node).count()
    }

    /// Iterates the postorder `(label, size)` entries — the content of the
    /// postorder queue `post(T)` (Def. 2).
    pub fn postorder(
        &self,
    ) -> impl DoubleEndedIterator<Item = (LabelId, u32)> + ExactSizeIterator + '_ {
        self.labels.iter().copied().zip(self.sizes.iter().copied())
    }

    /// Extracts the subtree rooted at `node` as an owned tree.
    ///
    /// Postorder numbers inside the copy are renumbered to `1..=size(node)`;
    /// the mapping is `new = old - lml(node) + 1`.
    pub fn subtree(&self, node: NodeId) -> Tree {
        let lo = self.lml(node).index();
        let hi = node.index() + 1;
        Tree {
            labels: self.labels[lo..hi].to_vec(),
            sizes: self.sizes[lo..hi].to_vec(),
        }
    }

    /// The parent of every node (`None` for the root), computed in one
    /// postorder scan. O(n) time, O(height) auxiliary stack.
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let n = self.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        // Stack of roots of completed subtrees not yet attached to a parent.
        let mut stack: Vec<NodeId> = Vec::new();
        for id in self.nodes() {
            let mut need = self.size(id) - 1;
            while need > 0 {
                let child = stack.pop().expect("valid postorder encoding");
                parent[child.index()] = Some(id);
                need -= self.size(child);
            }
            stack.push(id);
        }
        parent
    }

    /// The depth of every node (root has depth 0). O(n).
    pub fn depths(&self) -> Vec<u32> {
        let parents = self.parents();
        let mut depth = vec![0u32; self.len()];
        // Process in reverse postorder: parents come before children.
        for id in self.nodes().rev() {
            if let Some(p) = parents[id.index()] {
                depth[id.index()] = depth[p.index()] + 1;
            }
        }
        depth
    }

    /// The height of the tree: number of edges on the longest root-to-leaf
    /// path. A single node has height 0.
    pub fn height(&self) -> u32 {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// Direct access to the postorder label array (index = postorder - 1).
    #[inline]
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// Direct access to the postorder size array (index = postorder - 1).
    #[inline]
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// The maximum node cost under `cost`, written `c_T` in the paper
    /// (Sec. VI-A). Costs are per-node, `>= 1`.
    pub fn max_node_cost(&self, mut cost: impl FnMut(LabelId) -> u64) -> u64 {
        self.labels.iter().map(|&l| cost(l)).max().unwrap_or(1)
    }

    /// A borrowed [`TreeView`] of the whole tree.
    #[inline]
    pub fn view(&self) -> TreeView<'_> {
        TreeView {
            labels: &self.labels,
            sizes: &self.sizes,
        }
    }

    /// A borrowed [`TreeView`] of the subtree rooted at `node`, without
    /// copying: the subtree occupies the contiguous postorder interval
    /// `[lml(node), node]` of the arena, so the view is two subslices.
    /// Postorder numbers inside the view are `1..=size(node)` (the same
    /// renumbering as [`Tree::subtree`]).
    #[inline]
    pub fn subtree_view(&self, node: NodeId) -> TreeView<'_> {
        let lo = self.lml(node).index();
        let hi = node.index() + 1;
        TreeView {
            labels: &self.labels[lo..hi],
            sizes: &self.sizes[lo..hi],
        }
    }
}

/// A borrowed, zero-copy view of a tree (or of any subtree): two parallel
/// postorder slices of labels and subtree sizes.
///
/// Because a subtree spans a contiguous postorder interval of its host
/// arena and subtree sizes are invariant under the renumbering shift, a
/// `TreeView` of a subtree is just a pair of subslices — no copy, no
/// allocation. This is what lets the TASM evaluation layer run the
/// Zhang–Shasha DP directly over a slice of the scan engine's candidate
/// arena instead of cloning each proper subtree into a scratch tree.
///
/// The read API mirrors [`Tree`]; node ids are 1-based postorder numbers
/// **local to the view** (`1..=len`).
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict, NodeId};
///
/// let mut dict = LabelDict::new();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let h6 = h.subtree_view(NodeId::new(6)); // the second a(b, c) subtree
/// assert_eq!(h6.len(), 3);
/// assert_eq!(h6.label(h6.root()), h.label(NodeId::new(6)));
/// assert_eq!(h6.to_tree(), h.subtree(NodeId::new(6)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeView<'a> {
    labels: &'a [LabelId],
    sizes: &'a [u32],
}

impl<'a> TreeView<'a> {
    /// A view over raw postorder slices **without validation**; the caller
    /// must guarantee they encode a single well-formed tree (the
    /// invariants of [`Tree::from_postorder_unchecked`]).
    pub fn from_slices_unchecked(labels: &'a [LabelId], sizes: &'a [u32]) -> Self {
        debug_assert_eq!(labels.len(), sizes.len());
        debug_assert!(!labels.is_empty());
        debug_assert_eq!(sizes[labels.len() - 1] as usize, labels.len());
        TreeView { labels, sizes }
    }

    /// Number of nodes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Trees are non-empty by definition; always `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root node (largest local postorder number).
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::from_index(self.labels.len() - 1)
    }

    /// The label of `node` (local postorder).
    #[inline]
    pub fn label(&self, node: NodeId) -> LabelId {
        self.labels[node.index()]
    }

    /// The size of the subtree rooted at `node`.
    #[inline]
    pub fn size(&self, node: NodeId) -> u32 {
        self.sizes[node.index()]
    }

    /// The leftmost leaf `lml(node)` in local postorder numbering.
    #[inline]
    pub fn lml(&self, node: NodeId) -> NodeId {
        NodeId::new(node.post() - self.size(node) + 1)
    }

    /// Whether `node` is a leaf.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.size(node) == 1
    }

    /// Iterates over all node ids in local postorder (ascending).
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.labels.len()).map(NodeId::from_index)
    }

    /// The fanout (number of children) of `node`, recovered from the size
    /// slice by skipping child subtrees right to left. O(fanout).
    pub fn fanout(&self, node: NodeId) -> usize {
        let lml = self.lml(node).post();
        let mut next = node.post() - 1;
        let mut count = 0;
        while next >= lml && next > 0 {
            count += 1;
            next -= self.sizes[(next - 1) as usize]; // skip the child's subtree
        }
        count
    }

    /// Direct access to the postorder label slice (index = postorder − 1).
    #[inline]
    pub fn labels(&self) -> &'a [LabelId] {
        self.labels
    }

    /// Direct access to the postorder size slice (index = postorder − 1).
    #[inline]
    pub fn sizes(&self) -> &'a [u32] {
        self.sizes
    }

    /// A narrower view of the subtree rooted at `node` (local postorder).
    #[inline]
    pub fn subtree_view(&self, node: NodeId) -> TreeView<'a> {
        let lo = self.lml(node).index();
        let hi = node.index() + 1;
        TreeView {
            labels: &self.labels[lo..hi],
            sizes: &self.sizes[lo..hi],
        }
    }

    /// Copies the subtree rooted at `node` out as an owned [`Tree`]
    /// (allocates; used only for surviving top-k matches).
    pub fn subtree(&self, node: NodeId) -> Tree {
        let lo = self.lml(node).index();
        let hi = node.index() + 1;
        Tree {
            labels: self.labels[lo..hi].to_vec(),
            sizes: self.sizes[lo..hi].to_vec(),
        }
    }

    /// Copies the whole view out as an owned [`Tree`] (allocates).
    pub fn to_tree(&self) -> Tree {
        Tree {
            labels: self.labels.to_vec(),
            sizes: self.sizes.to_vec(),
        }
    }
}

/// Iterator over children right-to-left; see [`Tree::children_rl`].
#[derive(Debug)]
pub struct ChildrenRl<'a> {
    tree: &'a Tree,
    /// Postorder number of the parent's leftmost leaf.
    lml: u32,
    /// Postorder number of the next child to yield; 0 = exhausted.
    next: u32,
}

impl Iterator for ChildrenRl<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.lml || self.next == 0 {
            return None;
        }
        let child = NodeId::new(self.next);
        // Skip over the child's whole subtree to find the next sibling.
        self.next = self.tree.lml(child).post() - 1;
        Some(child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelDict;

    /// The example document H of Fig. 2:
    /// x(a(b, d), a(b, c)) with postorder h1..h7.
    fn example_h() -> (Tree, LabelDict) {
        let mut d = LabelDict::new();
        let (a, b, c, dd, x) = (
            d.intern("a"),
            d.intern("b"),
            d.intern("c"),
            d.intern("d"),
            d.intern("x"),
        );
        let h = Tree::from_postorder(vec![
            (b, 1),
            (dd, 1),
            (a, 3),
            (b, 1),
            (c, 1),
            (a, 3),
            (x, 7),
        ])
        .unwrap();
        (h, d)
    }

    #[test]
    fn from_postorder_builds_example_h() {
        let (h, _) = example_h();
        assert_eq!(h.len(), 7);
        assert_eq!(h.root(), NodeId::new(7));
        assert_eq!(h.size(NodeId::new(3)), 3);
        assert_eq!(h.lml(NodeId::new(3)), NodeId::new(1));
        assert_eq!(h.lml(NodeId::new(6)), NodeId::new(4));
        assert_eq!(h.lml(NodeId::new(7)), NodeId::new(1));
    }

    #[test]
    fn children_of_example_h() {
        let (h, _) = example_h();
        assert_eq!(
            h.children(NodeId::new(7)),
            vec![NodeId::new(3), NodeId::new(6)]
        );
        assert_eq!(
            h.children(NodeId::new(6)),
            vec![NodeId::new(4), NodeId::new(5)]
        );
        assert!(h.children(NodeId::new(1)).is_empty());
        assert_eq!(h.fanout(NodeId::new(7)), 2);
        assert_eq!(h.fanout(NodeId::new(1)), 0);
    }

    #[test]
    fn ancestor_and_left_of() {
        let (h, _) = example_h();
        let (n1, n3, n4, n6, n7) = (
            NodeId::new(1),
            NodeId::new(3),
            NodeId::new(4),
            NodeId::new(6),
            NodeId::new(7),
        );
        assert!(h.is_ancestor(n7, n1));
        assert!(h.is_ancestor(n3, n1));
        assert!(!h.is_ancestor(n6, n1));
        assert!(!h.is_ancestor(n1, n1));
        assert!(h.is_left_of(n1, n4));
        assert!(h.is_left_of(n3, n6));
        assert!(!h.is_left_of(n1, n3)); // n1 is a descendant of n3
        assert!(!h.is_left_of(n4, n3));
    }

    #[test]
    fn parents_and_depths() {
        let (h, _) = example_h();
        let p = h.parents();
        assert_eq!(p[NodeId::new(1).index()], Some(NodeId::new(3)));
        assert_eq!(p[NodeId::new(2).index()], Some(NodeId::new(3)));
        assert_eq!(p[NodeId::new(3).index()], Some(NodeId::new(7)));
        assert_eq!(p[NodeId::new(6).index()], Some(NodeId::new(7)));
        assert_eq!(p[NodeId::new(7).index()], None);
        let d = h.depths();
        assert_eq!(d[NodeId::new(7).index()], 0);
        assert_eq!(d[NodeId::new(3).index()], 1);
        assert_eq!(d[NodeId::new(1).index()], 2);
        assert_eq!(h.height(), 2);
    }

    #[test]
    fn subtree_extraction_renumbers() {
        let (h, _) = example_h();
        let h6 = h.subtree(NodeId::new(6));
        assert_eq!(h6.len(), 3);
        assert_eq!(h6.root(), NodeId::new(3));
        assert_eq!(h6.label(NodeId::new(3)), h.label(NodeId::new(6)));
        assert_eq!(h6.label(NodeId::new(1)), h.label(NodeId::new(4)));
        // A subtree of the whole tree is the tree itself.
        assert_eq!(h.subtree(h.root()), h);
    }

    #[test]
    fn postorder_round_trip() {
        let (h, _) = example_h();
        let entries: Vec<_> = h.postorder().collect();
        let h2 = Tree::from_postorder(entries).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn leaf_constructor() {
        let t = Tree::leaf(LabelId(0));
        assert_eq!(t.len(), 1);
        assert!(t.is_leaf(t.root()));
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Tree::from_postorder(vec![]), Err(TreeError::Empty));
    }

    #[test]
    fn rejects_zero_size() {
        let l = LabelId(0);
        assert!(matches!(
            Tree::from_postorder(vec![(l, 0)]),
            Err(TreeError::InvalidPostorder { position: 1, .. })
        ));
    }

    #[test]
    fn rejects_forest() {
        let l = LabelId(0);
        assert_eq!(
            Tree::from_postorder(vec![(l, 1), (l, 1)]),
            Err(TreeError::NotATree { roots: 2 })
        );
    }

    #[test]
    fn rejects_overshooting_size() {
        let l = LabelId(0);
        // Node 2 claims size 3 but only 1 node precedes it.
        assert!(matches!(
            Tree::from_postorder(vec![(l, 1), (l, 3)]),
            Err(TreeError::InvalidPostorder { position: 2, .. })
        ));
    }

    #[test]
    fn rejects_size_splitting_a_child() {
        let l = LabelId(0);
        // (l,1),(l,2) completes a 2-node tree; a following node of size 2
        // would have to split that subtree.
        assert!(matches!(
            Tree::from_postorder(vec![(l, 1), (l, 2), (l, 2)]),
            Err(TreeError::InvalidPostorder { position: 3, .. })
        ));
    }

    #[test]
    fn max_node_cost_unit() {
        let (h, _) = example_h();
        assert_eq!(h.max_node_cost(|_| 1), 1);
        assert_eq!(h.max_node_cost(|l| if l == LabelId(4) { 7 } else { 1 }), 7);
    }

    #[test]
    fn deep_path_tree() {
        // a(a(a(...))) of depth 99: postorder sizes 1..=100.
        let l = LabelId(0);
        let t = Tree::from_postorder((1..=100u32).map(|s| (l, s))).unwrap();
        assert_eq!(t.height(), 99);
        assert_eq!(t.fanout(t.root()), 1);
        assert_eq!(t.lml(t.root()), NodeId::new(1));
    }

    #[test]
    fn wide_star_tree() {
        // root with 99 leaf children.
        let l = LabelId(0);
        let mut entries: Vec<(LabelId, u32)> = (0..99).map(|_| (l, 1)).collect();
        entries.push((l, 100));
        let t = Tree::from_postorder(entries).unwrap();
        assert_eq!(t.height(), 1);
        assert_eq!(t.fanout(t.root()), 99);
        assert_eq!(t.children(t.root()).len(), 99);
        // children are sorted ascending
        let ch = t.children(t.root());
        assert!(ch.windows(2).all(|w| w[0] < w[1]));
    }
}
