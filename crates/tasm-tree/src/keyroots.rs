//! Relevant subtrees (Def. 8) a.k.a. *keyroots* of Zhang–Shasha.
//!
//! A subtree `T_i` is **relevant** iff it is not a prefix of any other
//! subtree (Def. 8). Because a subtree is a prefix of its parent's subtree
//! exactly when its root is the parent's *leftmost* child (they then share
//! the leftmost leaf), the relevant subtrees are rooted at the nodes that
//! are either the tree root or not a leftmost child — precisely the
//! `LR_keyroots` of Zhang & Shasha [9]:
//!
//! `keyroots(T) = { k | k is the root, or lml(k) != lml(parent(k)) }`.
//!
//! The tree edit distance algorithm runs one forest-distance pass per pair
//! of keyroots, so the number and sizes of keyroot subtrees determine its
//! cost — this is what Figs. 11 and 12 of the paper count.

use crate::node::NodeId;
use crate::tree::{Tree, TreeView};

/// Returns the keyroots of `tree` in ascending postorder.
///
/// A node is a keyroot iff no other node has the same leftmost leaf and a
/// larger postorder number; equivalently, iff it is the largest node of its
/// `lml` class.
///
/// # Examples
///
/// The example trees of the paper (Fig. 2, Example 1): the relevant subtrees
/// of G are G2 and G3; of H they are H2, H5, H6 and H7.
///
/// ```
/// use tasm_tree::{bracket, keyroots, LabelDict, NodeId};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let kg: Vec<u32> = keyroots(&g).iter().map(|n| n.post()).collect();
/// let kh: Vec<u32> = keyroots(&h).iter().map(|n| n.post()).collect();
/// assert_eq!(kg, vec![2, 3]);
/// assert_eq!(kh, vec![2, 5, 6, 7]);
/// ```
pub fn keyroots(tree: &Tree) -> Vec<NodeId> {
    let mut seen = Vec::new();
    let mut roots = Vec::new();
    keyroots_into(tree.view(), &mut seen, &mut roots);
    roots
}

/// As [`keyroots`], but over a borrowed [`TreeView`] (so candidate
/// subtrees can be decomposed in place, without a scratch-tree copy) and
/// writing into caller-owned buffers so repeated decompositions (one per
/// streamed candidate subtree) are allocation-free once the buffers'
/// capacity covers the largest tree seen. `seen` is scratch space (a
/// bitmap over `lml` values); `out` receives the keyroots in ascending
/// postorder.
pub fn keyroots_into(tree: TreeView<'_>, seen: &mut Vec<bool>, out: &mut Vec<NodeId>) {
    let n = tree.len();
    // A node k is a keyroot iff there is no node with the same lml later in
    // postorder. Scanning backwards and remembering seen lmls gives the
    // keyroots; scanning forward is easier with a "seen" bitmap over lml.
    seen.clear();
    seen.resize(n + 1, false);
    out.clear();
    for id in tree.nodes().rev() {
        let lml = tree.lml(id).post() as usize;
        if !seen[lml] {
            seen[lml] = true;
            out.push(id);
        }
    }
    out.reverse();
}

/// The sizes of all relevant (keyroot) subtrees, ascending postorder.
pub fn keyroot_sizes(tree: &Tree) -> Vec<u32> {
    keyroots(tree).into_iter().map(|k| tree.size(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelDict;

    fn parse(s: &str) -> Tree {
        let mut d = LabelDict::new();
        crate::bracket::parse(s, &mut d).unwrap()
    }

    #[test]
    fn paper_example_1() {
        let g = parse("{a{b}{c}}");
        let h = parse("{x{a{b}{d}}{a{b}{c}}}");
        let kg: Vec<u32> = keyroots(&g).iter().map(|n| n.post()).collect();
        let kh: Vec<u32> = keyroots(&h).iter().map(|n| n.post()).collect();
        assert_eq!(kg, vec![2, 3]);
        assert_eq!(kh, vec![2, 5, 6, 7]);
    }

    #[test]
    fn path_tree_has_single_keyroot() {
        // In a path (each node one child) every subtree is a prefix of the
        // whole tree, so only the root is relevant.
        let t = parse("{a{b{c{d}}}}");
        let k: Vec<u32> = keyroots(&t).iter().map(|n| n.post()).collect();
        assert_eq!(k, vec![4]);
    }

    #[test]
    fn star_tree_keyroots_are_all_but_first_leaf() {
        let t = parse("{r{a}{b}{c}{d}}");
        let k: Vec<u32> = keyroots(&t).iter().map(|n| n.post()).collect();
        // Leaves 2,3,4 have left siblings; leaf 1 is the leftmost child.
        assert_eq!(k, vec![2, 3, 4, 5]);
    }

    #[test]
    fn single_node() {
        let t = parse("{a}");
        assert_eq!(keyroots(&t), vec![crate::NodeId::new(1)]);
    }

    #[test]
    fn keyroots_match_definition_brute_force() {
        // Brute force Def. 8: T_i is relevant iff it is not a prefix of any
        // other subtree, i.e. no other node shares its lml while being larger.
        for s in [
            "{a{b}{c}}",
            "{x{a{b}{d}}{a{b}{c}}}",
            "{r{a{x}{y}}{b}{c{z}}}",
            "{a{b{c}{d}{e}}{f{g{h}}}}",
        ] {
            let t = parse(s);
            let expected: Vec<NodeId> = t
                .nodes()
                .filter(|&i| !t.nodes().any(|k| k != i && t.lml(k) == t.lml(i) && k > i))
                .collect();
            assert_eq!(keyroots(&t), expected, "tree {s}");
        }
    }

    #[test]
    fn keyroot_sizes_cover_root() {
        let t = parse("{x{a{b}{d}}{a{b}{c}}}");
        let sizes = keyroot_sizes(&t);
        assert_eq!(sizes, vec![1, 1, 3, 7]);
    }
}
