//! Incremental tree construction in document order.
//!
//! [`TreeBuilder`] assembles a [`Tree`] from `start(label)` / `end()` events
//! — the natural shape of a depth-first producer such as an XML parser. The
//! builder emits nodes in postorder as elements close, so it never holds
//! more than the currently open path plus the completed prefix.

use crate::error::TreeError;
use crate::label::LabelId;
use crate::tree::Tree;

/// Builds a [`Tree`] from nested `start`/`end` (or `leaf`) events.
///
/// # Examples
///
/// Building the query G of the paper (Fig. 2), `a(b, c)`:
///
/// ```
/// use tasm_tree::{LabelDict, TreeBuilder};
///
/// let mut dict = LabelDict::new();
/// let mut b = TreeBuilder::new();
/// b.start(dict.intern("a"));
/// b.leaf(dict.intern("b"));
/// b.leaf(dict.intern("c"));
/// b.end().unwrap();
/// let g = b.finish().unwrap();
/// assert_eq!(g.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct TreeBuilder {
    /// Postorder labels of completed nodes.
    labels: Vec<LabelId>,
    /// Postorder subtree sizes of completed nodes.
    sizes: Vec<u32>,
    /// For each open element: its label and the count of nodes completed
    /// strictly inside it so far.
    open: Vec<(LabelId, u32)>,
}

impl TreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        TreeBuilder {
            labels: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
            open: Vec::new(),
        }
    }

    /// Opens a new node with `label`; its children are the nodes produced
    /// until the matching [`end`](Self::end).
    pub fn start(&mut self, label: LabelId) {
        self.open.push((label, 0));
    }

    /// Closes the most recently opened node.
    pub fn end(&mut self) -> Result<(), TreeError> {
        let (label, inner) = self.open.pop().ok_or(TreeError::UnbalancedEnd)?;
        let size = inner + 1;
        self.labels.push(label);
        self.sizes.push(size);
        if let Some(parent) = self.open.last_mut() {
            parent.1 += size;
        }
        Ok(())
    }

    /// Adds a leaf node (equivalent to `start(label); end()`).
    pub fn leaf(&mut self, label: LabelId) {
        self.start(label);
        self.end().expect("start was just pushed");
    }

    /// Number of nodes completed so far.
    pub fn completed(&self) -> usize {
        self.labels.len()
    }

    /// Depth of the currently open path.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// [`TreeError::UnclosedStart`] if elements remain open,
    /// [`TreeError::Empty`] if no node was produced,
    /// [`TreeError::NotATree`] if the events formed a forest.
    pub fn finish(self) -> Result<Tree, TreeError> {
        if !self.open.is_empty() {
            return Err(TreeError::UnclosedStart {
                open: self.open.len(),
            });
        }
        if self.labels.is_empty() {
            return Err(TreeError::Empty);
        }
        let n = self.labels.len();
        if self.sizes[n - 1] as usize != n {
            // More than one root: count the top-level subtrees.
            let mut roots = 0usize;
            let mut i = n;
            while i > 0 {
                roots += 1;
                i -= self.sizes[i - 1] as usize;
            }
            return Err(TreeError::NotATree { roots });
        }
        Ok(Tree::from_postorder_unchecked(self.labels, self.sizes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelDict;
    use crate::node::NodeId;

    #[test]
    fn builds_example_document_h() {
        // H = x(a(b, d), a(b, c)) from Fig. 2.
        let mut d = LabelDict::new();
        let (a, b, c, dd, x) = (
            d.intern("a"),
            d.intern("b"),
            d.intern("c"),
            d.intern("d"),
            d.intern("x"),
        );
        let mut bld = TreeBuilder::new();
        bld.start(x);
        bld.start(a);
        bld.leaf(b);
        bld.leaf(dd);
        bld.end().unwrap();
        bld.start(a);
        bld.leaf(b);
        bld.leaf(c);
        bld.end().unwrap();
        bld.end().unwrap();
        let h = bld.finish().unwrap();
        assert_eq!(h.len(), 7);
        assert_eq!(h.size(NodeId::new(3)), 3);
        assert_eq!(h.size(NodeId::new(7)), 7);
        assert_eq!(h.label(NodeId::new(7)), x);
        // Matches the postorder construction.
        let h2 = Tree::from_postorder(vec![
            (b, 1),
            (dd, 1),
            (a, 3),
            (b, 1),
            (c, 1),
            (a, 3),
            (x, 7),
        ])
        .unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn single_leaf() {
        let mut d = LabelDict::new();
        let mut b = TreeBuilder::new();
        b.leaf(d.intern("only"));
        let t = b.finish().unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unbalanced_end_errors() {
        let mut b = TreeBuilder::new();
        assert_eq!(b.end(), Err(TreeError::UnbalancedEnd));
    }

    #[test]
    fn unclosed_start_errors() {
        let mut d = LabelDict::new();
        let mut b = TreeBuilder::new();
        b.start(d.intern("a"));
        assert_eq!(
            b.finish().unwrap_err(),
            TreeError::UnclosedStart { open: 1 }
        );
    }

    #[test]
    fn empty_builder_errors() {
        assert_eq!(TreeBuilder::new().finish().unwrap_err(), TreeError::Empty);
    }

    #[test]
    fn forest_errors() {
        let mut d = LabelDict::new();
        let l = d.intern("a");
        let mut b = TreeBuilder::new();
        b.leaf(l);
        b.leaf(l);
        assert_eq!(b.finish().unwrap_err(), TreeError::NotATree { roots: 2 });
    }

    #[test]
    fn depth_and_completed_track_progress() {
        let mut d = LabelDict::new();
        let l = d.intern("a");
        let mut b = TreeBuilder::new();
        assert_eq!(b.depth(), 0);
        b.start(l);
        b.start(l);
        assert_eq!(b.depth(), 2);
        assert_eq!(b.completed(), 0);
        b.end().unwrap();
        assert_eq!(b.depth(), 1);
        assert_eq!(b.completed(), 1);
    }
}
