//! Ordered labeled trees for TASM (Top-k Approximate Subtree Matching).
//!
//! This crate is the tree substrate of the TASM reproduction
//! (Augsten, Böhlen, Barbosa, Palpanas — ICDE 2010): ordered labeled trees
//! stored as postorder arenas, label interning, incremental builders,
//! bracket-notation I/O, keyroots (the paper's *relevant subtrees*, Def. 8)
//! and the *postorder queue* streaming abstraction (Def. 2).
//!
//! # Model
//!
//! A tree (Sec. IV-A of the paper) is a directed, acyclic, connected,
//! non-empty graph where every node has at most one parent and the children
//! of each node are totally ordered. Nodes are `(identifier, label)` pairs;
//! here the identifier is the **postorder number** ([`NodeId`]) and the
//! label an interned [`LabelId`].
//!
//! # Quick start
//!
//! ```
//! use tasm_tree::{bracket, keyroots, LabelDict, TreeQueue, PostorderQueue};
//!
//! let mut dict = LabelDict::new();
//! let doc = bracket::parse("{dblp{article{title{X1}}}{book{title{X2}}}}", &mut dict).unwrap();
//! assert_eq!(doc.len(), 7);
//!
//! // Stream it as a postorder queue (the only interface TASM-postorder uses).
//! let mut queue = TreeQueue::new(&doc);
//! let first = queue.dequeue().unwrap();
//! assert_eq!(dict.resolve(first.label), "X1");
//! assert_eq!(first.size, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bracket;
mod builder;
pub mod crc;
mod error;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod keyroots;
mod label;
mod node;
pub mod postfile;
mod postorder_queue;
pub mod stats;
pub mod traversal;
mod tree;

pub use builder::TreeBuilder;
pub use error::TreeError;
pub use keyroots::{keyroot_sizes, keyroots, keyroots_into};
pub use label::{LabelDict, LabelId};
pub use node::NodeId;
pub use postorder_queue::{
    collect_tree, IterQueue, PostorderEntry, PostorderQueue, TreeQueue, VecQueue,
};
pub use traversal::{ancestors, lca, preorder, Ancestors, Preorder};
pub use tree::{ChildrenRl, Tree, TreeView};
