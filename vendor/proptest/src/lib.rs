//! Offline shim for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build environment has no network access, so this path dependency
//! reimplements the pieces the test suites rely on: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), `prop_assert*` macros,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`arbitrary::any`], [`collection::vec`], and a deterministic
//! [`test_runner::TestRunner`].
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the seed values in scope), and generation is deterministic per test
//! function, which makes CI runs reproducible.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the runner that drives generation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block (named `ProptestConfig` in
    /// the prelude, as upstream).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Drives strategy generation. Deterministic: every runner starts
    /// from the same seed, so test failures reproduce exactly.
    #[derive(Debug)]
    pub struct TestRunner {
        pub(crate) rng: StdRng,
        config: Config,
    }

    impl TestRunner {
        /// Creates a runner with the given configuration.
        pub fn new(config: Config) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x7A53_1ED0_5EED),
                config,
            }
        }

        /// The runner's configuration.
        pub fn config(&self) -> &Config {
            &self.config
        }

        /// The underlying RNG (used by strategies).
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new(Config::default())
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRunner;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generated value plus (in upstream) its shrink state. This shim
    /// does not shrink, so the tree is just the value.
    pub trait ValueTree {
        /// The type of the generated value.
        type Value;
        /// The current value.
        fn current(&self) -> Self::Value;
    }

    /// Trivial [`ValueTree`] holding one generated value.
    #[derive(Debug, Clone)]
    pub struct Single<V>(pub V);

    impl<V: Clone> ValueTree for Single<V> {
        type Value = V;
        fn current(&self) -> V {
            self.0.clone()
        }
    }

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: Clone;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Generates a value tree (upstream-compatible entry point).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Single<Self::Value>, String> {
            Ok(Single(self.generate(runner.rng())))
        }

        /// Maps generated values through `f`.
        fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    /// Strategy for [`crate::arbitrary::any`].
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — uniform generation for primitive types.

    use crate::strategy::Any;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Clone {
        /// Draws a uniform value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::unnecessary_cast)]
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// The usual entry point: strategies, config, macros and `prop::`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules, as `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
///
/// This shim panics immediately (no shrinking), so it accepts the same
/// syntax as [`assert!`].
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ..)`
/// runs its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let cases = runner.config().cases;
                for _case in 0..cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng()); )+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_generate_in_bounds(x in 3u32..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn tuples_and_map_compose(v in (any::<u64>(), 1usize..5).prop_map(|(s, n)| vec![s; n])) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn collection_vec_sizes(v in prop::collection::vec(0u32..3, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 3));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::{Strategy, ValueTree};
        use crate::test_runner::TestRunner;
        let strat = (any::<u64>(), 1usize..100);
        let mut r1 = TestRunner::default();
        let mut r2 = TestRunner::default();
        for _ in 0..50 {
            let a = strat.new_tree(&mut r1).unwrap().current();
            let b = strat.new_tree(&mut r2).unwrap().current();
            assert_eq!(a, b);
        }
    }
}
