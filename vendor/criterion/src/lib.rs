//! Offline shim for the subset of the `criterion` API used by this
//! workspace's benches.
//!
//! The build environment has no network access, so this path dependency
//! provides the same surface (`Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Throughput`, `Bencher`, `criterion_group!`,
//! `criterion_main!`, `black_box`) backed by a simple wall-clock timer:
//! each benchmark is warmed up once, then timed over a fixed iteration
//! budget, and the mean time per iteration is printed. There is no
//! statistical analysis, HTML report, or baseline comparison — enough to
//! keep `cargo bench` runnable and `cargo bench --no-run` compiling.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, f);
        self
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the shim
    /// uses a fixed time budget instead).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a function within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, f);
        self
    }

    /// Benchmarks a function with an input value.
    pub fn bench_with_input<I, F, In>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &In),
        In: ?Sized,
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine given to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly within a small budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration run.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        // Aim for ~200ms of measurement, capped to keep `cargo bench` fast.
        let budget = Duration::from_millis(200);
        let reps = if once.is_zero() {
            1000
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1000) as u64
        };
        let t1 = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.elapsed = t1.elapsed();
        self.iters = reps;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / (b.iters as u32).max(1)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if !per_iter.is_zero() => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench: {id:<50} {per_iter:>12?}/iter{rate}");
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        group.bench_function("trivial", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("toplevel", |b| b.iter(|| black_box(2) + 2));
    }
}
