//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no network access, so instead of the real
//! `rand` crate this path dependency provides a small, deterministic,
//! API-compatible implementation: [`SeedableRng`], [`RngCore`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`rngs::StdRng`] backed by xoshiro256++ seeded via SplitMix64.
//!
//! The generators in `tasm-data` only promise determinism *per seed*, not
//! bit-compatibility with upstream `rand`, so swapping the algorithm is
//! sound.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::unnecessary_cast)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded with
    /// SplitMix64, as recommended by its authors.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
